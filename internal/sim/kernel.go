// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel with a virtual clock.
//
// The kernel replaces the real clusters of the paper's evaluation: the
// simulated MPI runtime (package mpi), the power profiler (package power)
// and the NAS-style kernels (package npb) all advance this virtual clock
// instead of wall time, which lets a laptop reproduce scalability studies
// up to hundreds of ranks while keeping timing derived from the same
// machine parameters (tc, tm, Ts, Tb) the analytical model uses.
//
// Concurrency model: every simulated process (Proc) runs in its own
// goroutine, but exactly one goroutine — either the kernel loop or a
// single process — executes at any moment. Control is handed off through
// unbuffered channels, so execution is sequential and, for a fixed seed,
// bit-for-bit deterministic. Processes block by parking; other processes
// wake them by scheduling events. The kernel detects global deadlock
// (parked processes with an empty event queue) and reports who was parked
// and why.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/units"
)

// event is a scheduled callback. Events with equal time fire in schedule
// (FIFO) order, which keeps runs deterministic.
type event struct {
	t   units.Seconds
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulator instance.
type Kernel struct {
	now    units.Seconds
	events eventHeap
	seq    int64

	yield chan struct{} // proc → kernel: "I have blocked or finished"

	procs     []*Proc
	live      int // procs spawned and not yet finished (incl. parked)
	running   bool
	stopped   bool
	procErr   error
	rng       *rand.Rand
	maxEvents int64 // safety valve against runaway simulations; 0 = unlimited
	nEvents   int64
}

// NewKernel returns a kernel whose random streams derive from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() units.Seconds { return k.now }

// RNG returns the kernel's deterministic random stream. It must only be
// used from kernel context (event callbacks or running processes).
func (k *Kernel) RNG() *rand.Rand { return k.rng }

// SetMaxEvents bounds the number of events Run will process; exceeding the
// bound makes Run return an error. Zero means unlimited.
func (k *Kernel) SetMaxEvents(n int64) { k.maxEvents = n }

// LiveProcs returns the number of spawned processes that have not finished.
func (k *Kernel) LiveProcs() int { return k.live }

// Schedule registers fn to run in kernel context at virtual time t.
// fn must not block; to model blocking behaviour, use a Proc.
// Scheduling in the past is an error the kernel reports at Run time.
func (k *Kernel) Schedule(t units.Seconds, fn func()) {
	if t < k.now {
		// Clamp, but surface the bug: scheduling in the past would break
		// causality silently. Panic is appropriate here — this is a
		// programming error inside the simulator's callers, not an input
		// error.
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, &event{t: t, seq: k.seq, fn: fn})
}

// After registers fn to run d from now.
func (k *Kernel) After(d units.Seconds, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.Schedule(k.now+d, fn)
}

// DeadlockError reports a simulation that ended with parked processes.
type DeadlockError struct {
	Time   units.Seconds
	Parked []string // "name: reason" for each parked process
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v: %d process(es) parked: %s",
		e.Time, len(e.Parked), strings.Join(e.Parked, "; "))
}

// Run processes events until none remain, a process panics, or Stop is
// called. It returns a *DeadlockError if processes are still parked when
// the event queue drains, and the recovered error if a process failed.
func (k *Kernel) Run() error {
	if k.running {
		return fmt.Errorf("sim: kernel already running")
	}
	k.running = true
	defer func() { k.running = false }()

	for len(k.events) > 0 && !k.stopped {
		k.nEvents++
		if k.maxEvents > 0 && k.nEvents > k.maxEvents {
			return fmt.Errorf("sim: event budget %d exhausted at t=%v (runaway simulation?)", k.maxEvents, k.now)
		}
		e := heap.Pop(&k.events).(*event)
		k.now = e.t
		e.fn()
		if k.procErr != nil {
			return k.procErr
		}
	}

	var parked []string
	for _, p := range k.procs {
		if !p.done && p.parked {
			parked = append(parked, fmt.Sprintf("%s: %s", p.name, p.reason))
		}
	}
	if len(parked) > 0 {
		sort.Strings(parked)
		return &DeadlockError{Time: k.now, Parked: parked}
	}
	return nil
}

// Stop makes Run return after the current event completes. Intended for
// simulations with a natural cut-off (e.g. a fixed measurement window).
func (k *Kernel) Stop() { k.stopped = true }

// Proc is a simulated process. All methods must be called from the
// process's own goroutine (i.e. inside the function passed to Spawn),
// except UnparkAt, which must be called from kernel context — another
// running process or a scheduled event.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	done   bool
	parked bool
	reason string
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() units.Seconds { return p.k.now }

// Spawn creates a process and schedules it to start at the current
// virtual time. fn runs in its own goroutine under the kernel's
// cooperative handoff. A panic inside fn aborts the simulation and is
// returned from Run.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt creates a process that starts at virtual time t ≥ now.
func (k *Kernel) SpawnAt(t units.Seconds, name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		<-p.resume // wait for the kernel to start us
		defer func() {
			if r := recover(); r != nil {
				if k.procErr == nil {
					k.procErr = fmt.Errorf("sim: process %s panicked: %v", p.name, r)
				}
			}
			p.done = true
			k.live--
			k.yield <- struct{}{}
		}()
		fn(p)
	}()
	k.Schedule(t, func() { k.handoff(p) })
	return p
}

// handoff transfers control to p and waits until p blocks or finishes.
// Kernel context only.
func (k *Kernel) handoff(p *Proc) {
	if p.done {
		panic(fmt.Sprintf("sim: resuming finished process %s", p.name))
	}
	p.resume <- struct{}{}
	<-k.yield
}

// block suspends the calling process and returns control to the kernel.
func (p *Proc) block() {
	p.k.yield <- struct{}{}
	<-p.resume
}

// Sleep advances the process's local time by d: the process is suspended
// and resumes at now+d. d must be non-negative; Sleep(0) still yields to
// the kernel, preserving FIFO fairness among same-time events.
func (p *Proc) Sleep(d units.Seconds) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s: negative sleep %v", p.name, d))
	}
	p.k.After(d, func() { p.k.handoff(p) })
	p.block()
}

// SleepUntil suspends the process until virtual time t ≥ now.
func (p *Proc) SleepUntil(t units.Seconds) {
	if t < p.k.now {
		panic(fmt.Sprintf("sim: %s: sleep until %v before now %v", p.name, t, p.k.now))
	}
	p.k.Schedule(t, func() { p.k.handoff(p) })
	p.block()
}

// Park suspends the process indefinitely with a human-readable reason
// (shown in deadlock reports). Another process must wake it with
// UnparkAt. Exactly one UnparkAt must follow each Park.
func (p *Proc) Park(reason string) {
	if p.parked {
		panic(fmt.Sprintf("sim: %s: park while already parked", p.name))
	}
	p.parked = true
	p.reason = reason
	p.block()
	p.parked = false
	p.reason = ""
}

// UnparkAt schedules the parked process p to resume at virtual time
// t ≥ now. It must be called from kernel context (a running process or a
// scheduled event), never from p itself.
func (p *Proc) UnparkAt(t units.Seconds) {
	if !p.parked {
		panic(fmt.Sprintf("sim: unpark of non-parked process %s", p.name))
	}
	if p.done {
		panic(fmt.Sprintf("sim: unpark of finished process %s", p.name))
	}
	p.parked = false // claim the wake so double-unpark is caught here
	p.reason = ""
	p.k.Schedule(t, func() { p.k.handoff(p) })
}
