// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel with a virtual clock.
//
// The kernel replaces the real clusters of the paper's evaluation: the
// simulated MPI runtime (package mpi), the power profiler (package power)
// and the NAS-style kernels (package npb) all advance this virtual clock
// instead of wall time, which lets a laptop reproduce scalability studies
// up to hundreds of ranks while keeping timing derived from the same
// machine parameters (tc, tm, Ts, Tb) the analytical model uses.
//
// Two execution styles share one event queue:
//
//   - Pure event-driven code schedules callbacks with Schedule/After and
//     drains them with RunCallback: a tight single-goroutine loop over a
//     value-typed 4-ary heap with no per-event allocation and no channel
//     operations — the fast path the power-budget scheduler runs on.
//   - Process-oriented code (Spawn) models blocking behaviour: every
//     simulated process (Proc) runs in its own goroutine, but exactly one
//     goroutine — either the kernel loop or a single process — executes
//     at any moment. Control is handed off through unbuffered channels,
//     so execution is sequential and, for a fixed seed, bit-for-bit
//     deterministic. Processes block by parking; other processes wake
//     them by scheduling events.
//
// The kernel detects global deadlock (parked processes with an empty
// event queue) and reports who was parked and why. When Run returns with
// unfinished processes — deadlock or Stop — their goroutines are drained
// (terminated cleanly), so building clusters in a loop never accumulates
// parked goroutines. A kernel is single-use: once Run or RunCallback
// returns, create a new kernel rather than running it again.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/units"
)

// event is a scheduled callback. Events with equal time fire in schedule
// (FIFO) order, which keeps runs deterministic. Events are held by value
// in the kernel's heap slice: pushing reuses the slice's spare capacity
// (the popped tail slots act as the free list), so steady-state
// scheduling allocates nothing beyond the callback closure itself.
type event struct {
	t   units.Seconds
	seq int64
	fn  func()
}

// before orders events by time, then schedule order.
func (e *event) before(o *event) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	return e.seq < o.seq
}

// eventHeap is a 4-ary min-heap of events by (t, seq). A 4-ary layout
// halves the tree depth of a binary heap, trading a few extra sibling
// comparisons (cache-local: the four children are adjacent) for half the
// swap chain on every pop — the dominant cost at the queue sizes the
// cluster simulations reach.
type eventHeap []event

// push appends e and restores the heap property.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	// Sift up.
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s[i].before(&s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the closure; the slot is reused by push
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s[c].before(&s[min]) {
				min = c
			}
		}
		if !s[min].before(&s[i]) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Clock is a read-only view of a virtual clock. The kernel implements
// it; consumers that only need timestamps (the telemetry recorder) take
// a Clock instead of the whole kernel so they can never schedule events
// or perturb the simulation.
type Clock interface {
	Now() units.Seconds
}

var _ Clock = (*Kernel)(nil)

// Kernel is a discrete-event simulator instance.
type Kernel struct {
	now    units.Seconds
	events eventHeap
	seq    int64

	yield chan struct{} // proc → kernel: "I have blocked or finished"

	procs     []*Proc
	live      int // procs spawned and not yet finished (incl. parked)
	running   bool
	stopped   bool
	draining  bool // Run is terminating leftover process goroutines
	procErr   error
	rng       *rand.Rand
	maxEvents int64 // safety valve against runaway simulations; 0 = unlimited
	nEvents   int64

	// cancelled holds the seqs of events revoked via Timer.Cancel. The
	// heap is not rebuilt on cancel; the loop discards a popped event
	// whose seq is in this set before it can fire. Lazily allocated so
	// simulations that never cancel pay nothing.
	cancelled map[int64]struct{}

	// Always-on host-side gauges (a compare or two per event — see
	// Stats). They never feed back into the simulation.
	maxHeap  int           // heap depth high-water
	lastEvT  units.Seconds // sim time of the last fired event
	curDrain int64         // callbacks fired at lastEvT so far
	maxDrain int64         // longest same-instant callback cascade
}

// NewKernel returns a kernel whose random streams derive from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() units.Seconds { return k.now }

// RNG returns the kernel's deterministic random stream. It must only be
// used from kernel context (event callbacks or running processes).
func (k *Kernel) RNG() *rand.Rand { return k.rng }

// SetMaxEvents bounds the number of events Run will process; exceeding the
// bound makes Run return an error. Zero means unlimited.
func (k *Kernel) SetMaxEvents(n int64) { k.maxEvents = n }

// LiveProcs returns the number of spawned processes that have not finished.
func (k *Kernel) LiveProcs() int { return k.live }

// Schedule registers fn to run in kernel context at virtual time t.
// fn must not block; to model blocking behaviour, use a Proc.
// Scheduling in the past is an error the kernel reports at Run time.
func (k *Kernel) Schedule(t units.Seconds, fn func()) {
	if t < k.now {
		// Clamp, but surface the bug: scheduling in the past would break
		// causality silently. Panic is appropriate here — this is a
		// programming error inside the simulator's callers, not an input
		// error.
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
	}
	k.seq++
	k.events.push(event{t: t, seq: k.seq, fn: fn})
	if n := len(k.events); n > k.maxHeap {
		k.maxHeap = n
	}
}

// After registers fn to run d from now.
func (k *Kernel) After(d units.Seconds, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.Schedule(k.now+d, fn)
}

// Timer is a handle to one scheduled event that can be revoked before it
// fires. The zero Timer is valid and Cancel on it is a no-op, so holders
// need no nil checks for "never armed". Cancelling an event that has
// already fired (or was already cancelled) is also a no-op: the fired
// event's seq can never be popped again, so the stale tombstone is
// harmless and is reclaimed when the queue drains.
type Timer struct {
	k   *Kernel
	seq int64
}

// Cancel revokes the timer's event if it has not fired yet.
func (t Timer) Cancel() {
	if t.k == nil || t.seq == 0 {
		return
	}
	if t.k.cancelled == nil {
		t.k.cancelled = make(map[int64]struct{})
	}
	t.k.cancelled[t.seq] = struct{}{}
}

// ScheduleTimer is Schedule returning a cancellable handle.
func (k *Kernel) ScheduleTimer(t units.Seconds, fn func()) Timer {
	k.Schedule(t, fn)
	return Timer{k: k, seq: k.seq}
}

// AfterTimer is After returning a cancellable handle.
func (k *Kernel) AfterTimer(d units.Seconds, fn func()) Timer {
	k.After(d, fn)
	return Timer{k: k, seq: k.seq}
}

// DeadlockError reports a simulation that ended with parked processes.
type DeadlockError struct {
	Time   units.Seconds
	Parked []string // "name: reason" for each parked process
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v: %d process(es) parked: %s",
		e.Time, len(e.Parked), strings.Join(e.Parked, "; "))
}

// loop is the shared event pump: pop, advance the clock, fire. Cancelled
// events are discarded before they count against the event budget or
// move the clock — a cancelled timer leaves no trace on the simulation.
func (k *Kernel) loop() error {
	for len(k.events) > 0 && !k.stopped {
		e := k.events.pop()
		if len(k.cancelled) > 0 {
			if _, dead := k.cancelled[e.seq]; dead {
				delete(k.cancelled, e.seq)
				continue
			}
		}
		k.nEvents++
		if k.maxEvents > 0 && k.nEvents > k.maxEvents {
			return fmt.Errorf("sim: event budget %d exhausted at t=%v (runaway simulation?)", k.maxEvents, k.now)
		}
		if k.nEvents > 1 && e.t == k.lastEvT {
			k.curDrain++
		} else {
			k.lastEvT = e.t
			k.curDrain = 1
		}
		if k.curDrain > k.maxDrain {
			k.maxDrain = k.curDrain
		}
		k.now = e.t
		e.fn()
		if k.procErr != nil {
			return k.procErr
		}
	}
	// Tombstones for events cancelled after firing can never be popped;
	// reclaim them once the queue drains.
	if len(k.events) == 0 {
		k.cancelled = nil
	}
	return nil
}

// Run processes events until none remain, a process panics, or Stop is
// called. It returns a *DeadlockError if processes are still parked when
// the event queue drains, and the recovered error if a process failed.
// Whatever the outcome, every spawned process goroutine has terminated by
// the time Run returns; the kernel must not be run again afterwards.
func (k *Kernel) Run() error {
	if k.running {
		return fmt.Errorf("sim: kernel already running")
	}
	k.running = true
	defer func() { k.running = false }()

	err := k.loop()

	// Snapshot the deadlock report before draining clears the park flags.
	var parked []string
	for _, p := range k.procs {
		if !p.done && p.parked {
			parked = append(parked, fmt.Sprintf("%s: %s", p.name, p.reason))
		}
	}
	k.drain()
	if err != nil {
		return err
	}
	if len(parked) > 0 {
		sort.Strings(parked)
		return &DeadlockError{Time: k.now, Parked: parked}
	}
	return nil
}

// RunCallback is the pure event-driven fast path: it drains the queue on
// the caller's goroutine with no handoff machinery, so simulations built
// solely from Schedule/After callbacks (the power-budget scheduler, timer
// wheels, samplers) never touch a channel. It falls back to Run when
// processes have been spawned.
func (k *Kernel) RunCallback() error {
	if len(k.procs) > 0 {
		return k.Run()
	}
	if k.running {
		return fmt.Errorf("sim: kernel already running")
	}
	k.running = true
	defer func() { k.running = false }()
	err := k.loop()
	if len(k.procs) == 0 {
		return err
	}
	// A callback spawned processes mid-run. On error, drain their
	// goroutines before surfacing it (the no-leak guarantee holds on
	// every exit path); otherwise finish under full Run semantics
	// (handoffs, deadlock detection, drain).
	if err != nil {
		k.drain()
		return err
	}
	k.running = false
	return k.Run()
}

// Stats are cumulative host-side kernel gauges: how much event traffic
// a run generated and how much pressure it put on the queue. They are
// pure observers — reading them never perturbs the simulation — and
// they are cheap enough (one compare in Schedule, two in the loop) to
// stay on unconditionally.
type Stats struct {
	// Events counts callbacks fired (cancelled events excluded).
	Events int64
	// MaxHeap is the event-heap depth high-water mark.
	MaxHeap int
	// MaxDrain is the longest run of callbacks fired at one sim
	// instant — the deepest same-time cascade the run produced.
	MaxDrain int64
}

// Stats returns the kernel's cumulative gauges. Valid at any point;
// most callers read it after Run/RunCallback returns.
func (k *Kernel) Stats() Stats {
	return Stats{Events: k.nEvents, MaxHeap: k.maxHeap, MaxDrain: k.maxDrain}
}

// Stop makes Run return after the current event completes. Intended for
// simulations with a natural cut-off (e.g. a fixed measurement window).
// Processes still pending at that point are terminated before Run
// returns; the kernel cannot be resumed.
func (k *Kernel) Stop() { k.stopped = true }

// abortSignal unwinds a process goroutine during drain. It is raised by
// block when the kernel is draining and swallowed by the Spawn wrapper's
// recover, so user code's defers still run.
type abortSignal struct{}

// drain terminates every unfinished process goroutine: each one is
// resumed with the draining flag set, which makes its next block() — the
// one it is currently inside — unwind via an abortSignal panic that the
// Spawn wrapper recovers. Processes whose start event never fired return
// before entering user code. Kernel context only, queue no longer
// running.
func (k *Kernel) drain() {
	if k.live == 0 {
		return
	}
	k.draining = true
	for _, p := range k.procs {
		if p.done {
			continue
		}
		p.resume <- struct{}{}
		<-k.yield
	}
	k.draining = false
}

// Proc is a simulated process. All methods must be called from the
// process's own goroutine (i.e. inside the function passed to Spawn),
// except UnparkAt, which must be called from kernel context — another
// running process or a scheduled event.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	done   bool
	parked bool
	reason string
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() units.Seconds { return p.k.now }

// Spawn creates a process and schedules it to start at the current
// virtual time. fn runs in its own goroutine under the kernel's
// cooperative handoff. A panic inside fn aborts the simulation and is
// returned from Run.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt creates a process that starts at virtual time t ≥ now.
func (k *Kernel) SpawnAt(t units.Seconds, name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		<-p.resume // wait for the kernel to start us
		defer func() {
			if r := recover(); r != nil {
				if _, abort := r.(abortSignal); !abort && k.procErr == nil {
					k.procErr = fmt.Errorf("sim: process %s panicked: %v", p.name, r)
				}
			}
			p.done = true
			k.live--
			k.yield <- struct{}{}
		}()
		if k.draining {
			return // drained before our start event fired
		}
		fn(p)
	}()
	k.Schedule(t, func() { k.handoff(p) })
	return p
}

// handoff transfers control to p and waits until p blocks or finishes.
// Kernel context only.
func (k *Kernel) handoff(p *Proc) {
	if p.done {
		panic(fmt.Sprintf("sim: resuming finished process %s", p.name))
	}
	p.resume <- struct{}{}
	<-k.yield
}

// block suspends the calling process and returns control to the kernel.
// If the kernel is draining when control comes back, the goroutine
// unwinds instead of resuming user code. The entry check covers process
// defers that block again (Sleep/Park inside a defer) while their
// goroutine is being drained: without it the defer's yield would be
// consumed by drain as if the process had finished and the goroutine
// would park forever.
func (p *Proc) block() {
	if p.k.draining {
		panic(abortSignal{})
	}
	p.k.yield <- struct{}{}
	<-p.resume
	if p.k.draining {
		panic(abortSignal{})
	}
}

// Sleep advances the process's local time by d: the process is suspended
// and resumes at now+d. d must be non-negative; Sleep(0) still yields to
// the kernel, preserving FIFO fairness among same-time events.
func (p *Proc) Sleep(d units.Seconds) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s: negative sleep %v", p.name, d))
	}
	p.k.After(d, func() { p.k.handoff(p) })
	p.block()
}

// SleepUntil suspends the process until virtual time t ≥ now.
func (p *Proc) SleepUntil(t units.Seconds) {
	if t < p.k.now {
		panic(fmt.Sprintf("sim: %s: sleep until %v before now %v", p.name, t, p.k.now))
	}
	p.k.Schedule(t, func() { p.k.handoff(p) })
	p.block()
}

// Park suspends the process indefinitely with a human-readable reason
// (shown in deadlock reports). Another process must wake it with
// UnparkAt. Exactly one UnparkAt must follow each Park.
func (p *Proc) Park(reason string) {
	if p.parked {
		panic(fmt.Sprintf("sim: %s: park while already parked", p.name))
	}
	p.parked = true
	p.reason = reason
	p.block()
	p.parked = false
	p.reason = ""
}

// UnparkAt schedules the parked process p to resume at virtual time
// t ≥ now. It must be called from kernel context (a running process or a
// scheduled event), never from p itself.
func (p *Proc) UnparkAt(t units.Seconds) {
	if !p.parked {
		panic(fmt.Sprintf("sim: unpark of non-parked process %s", p.name))
	}
	if p.done {
		panic(fmt.Sprintf("sim: unpark of finished process %s", p.name))
	}
	p.parked = false // claim the wake so double-unpark is caught here
	p.reason = ""
	p.k.Schedule(t, func() { p.k.handoff(p) })
}
