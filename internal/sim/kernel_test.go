package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Schedule(3, func() { order = append(order, "c") })
	k.Schedule(1, func() { order = append(order, "a") })
	k.Schedule(2, func() { order = append(order, "b") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("order = %q, want abc", got)
	}
	if k.Now() != 3 {
		t.Fatalf("Now = %v, want 3", k.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past must panic")
			}
		}()
		k.Schedule(5, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel(1)
	var wake units.Seconds
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(2.5)
		wake = p.Now()
		p.Sleep(1.5)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 2.5 {
		t.Fatalf("woke at %v, want 2.5", wake)
	}
	if k.Now() != 4 {
		t.Fatalf("end time %v, want 4", k.Now())
	}
}

func TestSpawnAt(t *testing.T) {
	k := NewKernel(1)
	var started units.Seconds
	k.SpawnAt(7, "late", func(p *Proc) { started = p.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if started != 7 {
		t.Fatalf("started at %v, want 7", started)
	}
}

func TestParkUnpark(t *testing.T) {
	k := NewKernel(1)
	var got units.Seconds
	var consumer *Proc
	consumer = k.Spawn("consumer", func(p *Proc) {
		p.Park("waiting for producer")
		got = p.Now()
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(3)
		consumer.UnparkAt(p.Now() + 2) // message arrives 2s later
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("consumer resumed at %v, want 5", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("stuck-a", func(p *Proc) { p.Park("waiting for godot") })
	k.Spawn("stuck-b", func(p *Proc) { p.Park("also waiting") })
	err := k.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(dl.Parked) != 2 {
		t.Fatalf("parked = %v, want 2 entries", dl.Parked)
	}
	if !strings.Contains(dl.Error(), "godot") {
		t.Fatalf("deadlock message should include park reason: %q", dl.Error())
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("bomb", func(p *Proc) {
		p.Sleep(1)
		panic("boom")
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want propagated panic, got %v", err)
	}
}

func TestLiveProcs(t *testing.T) {
	k := NewKernel(1)
	if k.LiveProcs() != 0 {
		t.Fatal("no procs yet")
	}
	k.Spawn("a", func(p *Proc) { p.Sleep(2) })
	k.Spawn("b", func(p *Proc) { p.Sleep(4) })
	var at1, at3, at5 int
	k.Schedule(1, func() { at1 = k.LiveProcs() })
	k.Schedule(3, func() { at3 = k.LiveProcs() })
	k.Schedule(5, func() { at5 = k.LiveProcs() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != 2 || at3 != 1 || at5 != 0 {
		t.Fatalf("live counts = %d,%d,%d; want 2,1,0", at1, at3, at5)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired == 3 {
			k.Stop()
		}
		k.After(1, tick)
	}
	k.After(1, tick)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("fired %d, want 3", fired)
	}
}

func TestMaxEvents(t *testing.T) {
	k := NewKernel(1)
	k.SetMaxEvents(10)
	var loop func()
	loop = func() { k.After(1, loop) }
	k.After(1, loop)
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("want event-budget error, got %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) string {
		k := NewKernel(seed)
		var log []string
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 5; j++ {
					d := units.Seconds(k.RNG().Float64())
					p.Sleep(d)
					log = append(log, fmt.Sprintf("%s@%.9f", p.Name(), float64(p.Now())))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, ",")
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed gave different traces:\n%s\n%s", a, b)
	}
	c := run(43)
	if a == c {
		t.Fatal("different seeds should (almost surely) differ")
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("bad", func(p *Proc) { p.Sleep(-1) })
	if err := k.Run(); err == nil || !strings.Contains(err.Error(), "negative sleep") {
		t.Fatalf("want negative-sleep panic, got %v", err)
	}
}

func TestResourceSerialises(t *testing.T) {
	k := NewKernel(1)
	nic := NewResource("nic0")
	ends := make([]units.Seconds, 2)
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn(fmt.Sprintf("sender%d", i), func(p *Proc) {
			_, end := nic.Use(p, 10)
			ends[i] = end
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Both start at t=0 logically, but the NIC serialises them.
	if ends[0] != 10 || ends[1] != 20 {
		t.Fatalf("ends = %v, want [10 20]", ends)
	}
	if nic.BusyTime() != 20 {
		t.Fatalf("busy = %v, want 20", nic.BusyTime())
	}
	if nic.Uses() != 2 {
		t.Fatalf("uses = %d, want 2", nic.Uses())
	}
}

func TestResourceIdleGap(t *testing.T) {
	k := NewKernel(1)
	r := NewResource("link")
	k.Spawn("a", func(p *Proc) {
		r.Use(p, 5) // [0,5]
		p.Sleep(10) // resource idle [5,15]
		start, end := r.Use(p, 5)
		if start != 15 || end != 20 {
			t.Errorf("second use = [%v,%v], want [15,20]", start, end)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: for any set of reservation durations, a resource's total busy
// time equals the sum of durations and reservations never overlap.
func TestResourceReservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("x")
		now := units.Seconds(0)
		var lastEnd units.Seconds
		var total units.Seconds
		for i := 0; i < 50; i++ {
			d := units.Seconds(rng.Float64() * 3)
			now += units.Seconds(rng.Float64()) // time advances between calls
			start, end := r.Reserve(now, d)
			ddiff := float64((end - start) - d)
			if ddiff < 0 {
				ddiff = -ddiff
			}
			if start < lastEnd || start < now || ddiff > 1e-9 {
				return false
			}
			lastEnd = end
			total += d
		}
		diff := float64(r.BusyTime() - total)
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// goroutineCount samples runtime.NumGoroutine with settling retries, so
// the leak checks below don't flake on goroutines still unwinding.
func goroutineCount() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(time.Millisecond)
		m := runtime.NumGoroutine()
		if m >= n {
			return m
		}
		n = m
	}
	return n
}

// Satellite regression: Run must terminate the goroutines of parked
// processes when it returns via deadlock — before the drain fix, every
// deadlocked run leaked one goroutine per parked process and repeated
// cluster construction in benchmarks accumulated them.
func TestRunDrainsDeadlockedGoroutines(t *testing.T) {
	before := goroutineCount()
	for i := 0; i < 20; i++ {
		k := NewKernel(int64(i))
		k.Spawn("stuck-a", func(p *Proc) { p.Park("waiting forever") })
		k.Spawn("stuck-b", func(p *Proc) { p.Park("also waiting") })
		var dl *DeadlockError
		if err := k.Run(); !errors.As(err, &dl) {
			t.Fatalf("want DeadlockError, got %v", err)
		}
		if n := k.LiveProcs(); n != 0 {
			t.Fatalf("LiveProcs = %d after Run, want 0", n)
		}
	}
	if after := goroutineCount(); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after 20 deadlocked runs", before, after)
	}
}

// Run via Stop() must likewise drain sleeping processes and processes
// whose start event never fired.
func TestRunDrainsStoppedGoroutines(t *testing.T) {
	before := goroutineCount()
	for i := 0; i < 20; i++ {
		k := NewKernel(int64(i))
		k.Spawn("sleeper", func(p *Proc) { p.Sleep(1000) })
		k.SpawnAt(500, "late", func(p *Proc) { p.Sleep(1) })
		k.Schedule(1, k.Stop)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if n := k.LiveProcs(); n != 0 {
			t.Fatalf("LiveProcs = %d after stopped Run, want 0", n)
		}
	}
	if after := goroutineCount(); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after 20 stopped runs", before, after)
	}
}

// Draining unwinds via panic so user defers still run — cleanup written
// by process code must execute even when the simulation deadlocks.
func TestDrainRunsProcessDefers(t *testing.T) {
	k := NewKernel(1)
	cleaned := false
	k.Spawn("careful", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Park("never woken")
	})
	var dl *DeadlockError
	if err := k.Run(); !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if !cleaned {
		t.Fatal("process defer did not run during drain")
	}
}

// A process defer that blocks again (Sleep/Park inside a defer) while
// its goroutine is being drained must unwind immediately, not desync the
// drain handshake.
func TestDrainSurvivesBlockingDefers(t *testing.T) {
	before := goroutineCount()
	for i := 0; i < 10; i++ {
		k := NewKernel(int64(i))
		k.Spawn("nested", func(p *Proc) {
			defer p.Sleep(1) // blocks during the abort unwind
			p.Park("never woken")
		})
		var dl *DeadlockError
		if err := k.Run(); !errors.As(err, &dl) {
			t.Fatalf("want DeadlockError, got %v", err)
		}
		if n := k.LiveProcs(); n != 0 {
			t.Fatalf("LiveProcs = %d after drain with blocking defer, want 0", n)
		}
	}
	if after := goroutineCount(); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// RunCallback must drain mid-run-spawned processes on its error path
// too: a proc panic (or budget trip) with another proc parked must not
// leak the parked goroutine.
func TestRunCallbackErrorPathDrains(t *testing.T) {
	before := goroutineCount()
	for i := 0; i < 10; i++ {
		k := NewKernel(int64(i))
		k.Schedule(1, func() {
			k.Spawn("parked", func(p *Proc) { p.Park("waiting forever") })
			k.Spawn("bomb", func(p *Proc) {
				p.Sleep(1)
				panic("boom")
			})
		})
		err := k.RunCallback()
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("want propagated panic, got %v", err)
		}
		if n := k.LiveProcs(); n != 0 {
			t.Fatalf("LiveProcs = %d after error-path RunCallback, want 0", n)
		}
	}
	if after := goroutineCount(); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// RunCallback drains pure event-driven simulations and preserves event
// ordering, Stop, and the event budget exactly like Run.
func TestRunCallback(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		k.Schedule(units.Seconds(100-i), func() { order = append(order, i) })
	}
	if err := k.RunCallback(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 100 {
		t.Fatalf("fired %d events, want 100", len(order))
	}
	for j := 1; j < len(order); j++ {
		if order[j] > order[j-1] {
			t.Fatalf("events out of time order: %v", order[:j+1])
		}
	}

	k2 := NewKernel(1)
	k2.SetMaxEvents(5)
	var loop func()
	loop = func() { k2.After(1, loop) }
	k2.After(1, loop)
	if err := k2.RunCallback(); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("want event-budget error, got %v", err)
	}
}

// RunCallback falls back to full process semantics when a callback
// spawns processes mid-run.
func TestRunCallbackSpawnFallback(t *testing.T) {
	k := NewKernel(1)
	var woke units.Seconds
	k.Schedule(1, func() {
		k.Spawn("late-proc", func(p *Proc) {
			p.Sleep(2)
			woke = p.Now()
		})
	})
	if err := k.RunCallback(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Fatalf("process woke at %v, want 3", woke)
	}
}

// Heap property: an adversarial mix of push times drains in
// nondecreasing (t, seq) order. Guards the hand-rolled 4-ary sift code.
func TestEventHeapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel(seed)
		var fired []units.Seconds
		n := 200
		var schedule func()
		schedule = func() {
			// Half the events schedule more events while running.
			if n > 0 && rng.Float64() < 0.5 {
				n--
				k.After(units.Seconds(rng.Float64()*3), schedule)
			}
			fired = append(fired, k.Now())
		}
		for i := 0; i < 50; i++ {
			k.Schedule(units.Seconds(rng.Float64()*10), schedule)
		}
		if err := k.RunCallback(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUnparkNotParkedPanics(t *testing.T) {
	k := NewKernel(1)
	var victim *Proc
	victim = k.Spawn("victim", func(p *Proc) { p.Sleep(100) })
	k.Spawn("attacker", func(p *Proc) {
		p.Sleep(1)
		defer func() {
			if recover() == nil {
				t.Error("unparking a non-parked proc must panic")
			}
		}()
		victim.UnparkAt(p.Now())
	})
	_ = k.Run()
}
