package sim

import (
	"fmt"

	"repro/internal/units"
)

// Resource models a serially-reusable device with first-come-first-served
// reservation semantics — a NIC, a memory channel, a link. A caller
// reserves the resource for a duration; the reservation begins at
// max(now, end of previous reservation). This is the standard
// store-and-forward serialisation used to make network contention emerge
// in the simulated cluster (e.g. two ranks on one node sending at once
// share the node's NIC).
type Resource struct {
	name   string
	freeAt units.Seconds
	busy   units.Seconds // accumulated busy time, for utilisation stats
	uses   int64
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the identifier given at construction.
func (r *Resource) Name() string { return r.name }

// Reserve books the resource for duration d starting no earlier than now,
// queueing behind existing reservations. It returns the start and end of
// the booked interval. The caller is responsible for sleeping until end
// if it models synchronous use.
func (r *Resource) Reserve(now units.Seconds, d units.Seconds) (start, end units.Seconds) {
	if d < 0 {
		panic(fmt.Sprintf("sim: resource %s: negative duration %v", r.name, d))
	}
	start = now
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + d
	r.freeAt = end
	r.busy += d
	r.uses++
	return start, end
}

// EarliestStart returns the first time ≥ now at which the resource is free.
func (r *Resource) EarliestStart(now units.Seconds) units.Seconds {
	if r.freeAt > now {
		return r.freeAt
	}
	return now
}

// ReserveAt books the resource for [start, start+d]. start must not
// precede the end of the previous reservation; use EarliestStart to find
// a feasible start. This exists so that a caller can atomically reserve
// several resources (e.g. the sender's and receiver's NICs) at a common
// start time.
func (r *Resource) ReserveAt(start, d units.Seconds) (end units.Seconds) {
	if d < 0 {
		panic(fmt.Sprintf("sim: resource %s: negative duration %v", r.name, d))
	}
	if start < r.freeAt {
		panic(fmt.Sprintf("sim: resource %s: reservation at %v overlaps previous (free at %v)", r.name, start, r.freeAt))
	}
	end = start + d
	r.freeAt = end
	r.busy += d
	r.uses++
	return end
}

// Use reserves the resource for d and suspends p until the reservation
// ends, modelling synchronous occupancy. It returns the interval.
func (r *Resource) Use(p *Proc, d units.Seconds) (start, end units.Seconds) {
	start, end = r.Reserve(p.Now(), d)
	p.SleepUntil(end)
	return start, end
}

// FreeAt returns the time the last reservation releases the resource.
func (r *Resource) FreeAt() units.Seconds { return r.freeAt }

// BusyTime returns total reserved time.
func (r *Resource) BusyTime() units.Seconds { return r.busy }

// Uses returns the number of reservations made.
func (r *Resource) Uses() int64 { return r.uses }
