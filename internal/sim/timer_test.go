package sim

import (
	"strings"
	"testing"
)

func TestTimerCancelSkipsEvent(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Schedule(1, func() { order = append(order, "a") })
	tm := k.ScheduleTimer(2, func() { order = append(order, "b") })
	k.Schedule(3, func() { order = append(order, "c") })
	tm.Cancel()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "ac" {
		t.Fatalf("order = %q, want ac (cancelled event fired)", got)
	}
	if k.Now() != 3 {
		t.Fatalf("Now = %v, want 3", k.Now())
	}
}

func TestTimerCancelFromCallback(t *testing.T) {
	k := NewKernel(1)
	var tm Timer
	fired := false
	k.Schedule(1, func() { tm.Cancel() })
	tm = k.AfterTimer(5, func() { fired = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event fired despite in-sim cancellation")
	}
}

func TestTimerCancelledEventsDontCountOrAdvanceClock(t *testing.T) {
	k := NewKernel(1)
	k.SetMaxEvents(2)
	var last float64
	k.Schedule(1, func() { last = 1 })
	tm := k.ScheduleTimer(2, func() { t.Error("cancelled event fired") })
	tm2 := k.AfterTimer(3, func() { t.Error("cancelled event fired") })
	k.Schedule(4, func() { last = 4 })
	tm.Cancel()
	tm2.Cancel()
	// 2 live events under a budget of 2: cancelled pops must not count.
	if err := k.Run(); err != nil {
		t.Fatalf("cancelled events counted against the event budget: %v", err)
	}
	if last != 4 {
		t.Fatalf("last = %v, want 4", last)
	}
}

func TestTimerZeroAndPostFireCancelAreNoops(t *testing.T) {
	var zero Timer
	zero.Cancel() // must not panic

	k := NewKernel(1)
	n := 0
	tm := k.AfterTimer(1, func() { n++ })
	k.Schedule(2, func() {
		tm.Cancel() // already fired: no-op
	})
	k.Schedule(3, func() { n++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if k.cancelled != nil {
		t.Fatal("tombstones not reclaimed after queue drained")
	}
}

func TestTimerCancelOneOfSameTime(t *testing.T) {
	k := NewKernel(1)
	var order []int
	timers := make([]Timer, 5)
	for i := 0; i < 5; i++ {
		i := i
		timers[i] = k.ScheduleTimer(1, func() { order = append(order, i) })
	}
	timers[2].Cancel()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
