// Command figures regenerates the tables and figures of the paper's
// evaluation section against the simulated clusters.
//
// Measured sweeps run their points across a worker pool (one simulated
// cluster per point, seeded per point), and every model-surface figure
// prices its grid through one shared operating-point cache — the output
// is byte-identical at any -workers value.
//
// Usage:
//
//	figures [-fig 2a|2b|3|4|5|6|7|8|9|10|all] [-quick] [-csv] [-seed N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
	"repro/internal/machine"
	"repro/internal/opcache"
)

func main() {
	figID := flag.String("fig", "all", "figure id to regenerate, or 'all'")
	quick := flag.Bool("quick", false, "reduced problem sizes and rank counts")
	csv := flag.Bool("csv", false, "emit machine-readable CSV instead of tables")
	seed := flag.Int64("seed", 42, "measurement-noise seed")
	workers := flag.Int("workers", 0, "concurrent sweep points per figure (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	// One operating-point cache shared by every model-surface figure:
	// the (p, f) grids of figures 5–9 are priced once across the run.
	cache, err := opcache.New(machine.SystemG())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := figures.Options{Quick: *quick, Seed: *seed, Workers: *workers, Cache: cache}
	gens := figures.All()
	if *figID != "all" {
		g, err := figures.ByID(*figID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		gens = []figures.Generator{g}
	}
	for _, g := range gens {
		fig, err := g.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", g.ID, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# figure %s: %s\n%s", fig.ID, fig.Title, fig.CSV)
		} else {
			fmt.Println(fig)
		}
	}
}
