// Command powerpack profiles a kernel run on the simulated cluster the
// way PowerPack profiles a real node: per-component power sampled on a
// fixed grid, rendered as a strip chart (Figure 10) or CSV.
//
// Usage:
//
//	powerpack -bench ft -class S -p 4 [-interval 0.01] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/machine"
	"repro/internal/npb"
	"repro/internal/npb/cg"
	"repro/internal/npb/ep"
	"repro/internal/npb/ft"
	"repro/internal/npb/is"
	"repro/internal/npb/mg"
	"repro/internal/power"
	"repro/internal/units"
)

func main() {
	bench := flag.String("bench", "ft", "kernel: ep, ft, cg, is, mg")
	class := flag.String("class", "T", "problem class: T, S, W, A, B")
	p := flag.Int("p", 4, "number of ranks")
	clusterName := flag.String("cluster", "systemg", "cluster preset")
	interval := flag.Float64("interval", 0, "sampling interval in seconds (0 = auto ~200 samples)")
	csv := flag.Bool("csv", false, "emit CSV instead of the strip chart")
	rank := flag.Int("rank", 0, "node (rank) to profile; -1 = whole cluster")
	seed := flag.Int64("seed", 1, "noise seed")
	flag.Parse()

	spec, ok := machine.Presets()[strings.ToLower(*clusterName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown cluster %q\n", *clusterName)
		os.Exit(2)
	}
	mk := func() (npb.Kernel, error) {
		switch strings.ToLower(*bench) {
		case "ep":
			return ep.New(ep.Classes()[*class])
		case "ft":
			return ft.New(ft.Classes()[*class])
		case "cg":
			return cg.New(cg.Classes()[*class])
		case "is":
			return is.New(is.Classes()[*class])
		case "mg":
			return mg.New(mg.Classes()[*class])
		}
		return nil, fmt.Errorf("unknown benchmark %q", *bench)
	}

	// Auto-size the interval with a noiseless dry run.
	sampling := units.Seconds(*interval)
	if sampling <= 0 {
		k, err := mk()
		exitOn(err)
		dry, err := cluster.New(cluster.Config{Spec: spec, Ranks: *p, Alpha: k.Alpha(), Seed: *seed})
		exitOn(err)
		_, err = npb.Run(dry, k)
		exitOn(err)
		sampling = units.Seconds(float64(dry.Wall()) / 200)
		if sampling <= 0 {
			sampling = units.Millisecond
		}
	}

	k, err := mk()
	exitOn(err)
	cl, err := cluster.New(cluster.Config{
		Spec: spec, Ranks: *p, Alpha: k.Alpha(),
		Noise: cluster.DefaultNoise(), Seed: *seed,
	})
	exitOn(err)
	var ranks []int
	if *rank >= 0 {
		ranks = []int{*rank}
	}
	prof, err := power.Attach(cl, sampling, true, ranks...)
	exitOn(err)
	rep, err := npb.Run(cl, k)
	exitOn(err)

	trace := prof.Profile()
	if *csv {
		exitOn(trace.WriteCSV(os.Stdout))
		return
	}
	fmt.Printf("%s\n", rep)
	fmt.Print(trace.Render(96))
	fmt.Printf("peak %v, mean %v, trace energy %v\n", trace.PeakTotal(), trace.MeanTotal(), trace.Energy())
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
