// Command schedrun races the power-budget scheduling policies head to
// head on one synthetic job trace: the same jobs, the same cluster, the
// same power cap — only the policy differs. The comparison table is the
// paper's "power-constrained parallel computation" at fleet scale: the
// iso-energy-efficiency-aware policies should complete the trace at
// least as fast as the FIFO baseline while spending less energy per job
// and never exceeding the cap.
//
// With -backfill every policy is wrapped in EASY-style reservations
// (sched.Backfill): a blocked queue head is promised ranks and watts at
// a model-predicted future start, and later jobs only jump it when they
// cannot delay that start — bounding the worst-case wait of wide jobs.
// A specific wrapped policy can also be named directly, e.g.
// -policy backfill+ee-max.
//
// Profiling the scheduler hot path needs no test binary: -cpuprofile /
// -memprofile write pprof files covering the schedule runs, and
// -repeat N executes each selected policy's schedule N times so short
// traces accumulate enough samples (the comparison table reports the
// last repetition; repetitions are independent and identical).
//
// The -cluster flag accepts either a bare preset ("systemg", "dori") or
// a mixed pool list ("systemg:32,dori:32") building a heterogeneous
// platform: each pool keeps its own machine vector and DVFS ladder, and
// the policies place every job entirely within one pool (ee-max picks
// the EE-best pool, fifo the lowest-ranked pool that fits).
//
// The cap can be a timeline instead of a constant: -capplan takes
// "start:watts" windows ("0:2500,2:1500,4:2500" squeezes the budget
// mid-trace — a demand-response event), -capfile reads the same
// timeline from a t_s,cap_w CSV (an externally logged tariff or carbon
// trace), and -capdump writes the active timeline back out as CSV, so
// an exported plan re-imports to the identical schedule. Plan runs
// print a per-window table: energy, mean draw, cap utilisation and
// violations inside every budget window.
//
// -reserve K holds EASY reservations for the first K blocked jobs
// (conservative multi-reservation backfill; K > 1 implies -backfill).
//
// Fault injection (internal/faults) threads deterministic failures
// through the runs: -faults takes a plan spec ("fail=3@10,mtbf=*:900,
// mttr=*:120,emer=20-40:600,retries=2,ckpt=30,restart=5"), -faultfile
// reads the same plan from CSV, and -mtbf/-mttr (always together) set a
// wildcard failure/repair process for every pool from the command line;
// -retries, -ckpt and -restartcost override the corresponding plan
// knobs. A plan's power emergencies clamp the effective cap, so
// -capdump — which exports the budget timeline alone — cannot combine
// with fault injection. Fault runs print a per-policy fault summary,
// and when any job is permanently lost (killed past its retry cap)
// schedrun exits with status 4, mirroring the exit-3 violation gate.
//
// Observability (internal/telemetry) attaches to a single named policy:
// -trace writes a Chrome trace-event JSON timeline (open in Perfetto or
// chrome://tracing), -events the raw decision stream as NDJSON,
// -metrics the sim-time metrics registry as CSV, and -audit renders the
// plain-text decision audit ("summary", a job ID, or "all") on stdout.
// These flags need -policy NAME — a decision stream interleaving
// several independent schedules would be meaningless — and with
// -repeat N they record only the final repetition, so profiling runs
// stay clean. -json dumps the machine-readable results (any policy
// selection) to a file, or stdout with "-". When any run violated the
// cap, schedrun exits with status 3 after printing its tables, so CI
// smoke jobs can assert the zero-violation guarantee.
//
// Usage:
//
//	schedrun -jobs 64 -cap 2500 [-ranks 64] [-cluster systemg:32,dori:32]
//	         [-capplan 0:2500,3600:1500 | -capfile plan.csv] [-capdump out.csv]
//	         [-faults fail=3@10,retries=2 | -faultfile plan.csv]
//	         [-mtbf S -mttr S] [-retries N] [-ckpt S] [-restartcost S]
//	         [-policy all] [-backfill] [-reserve K] [-detail] [-edge]
//	         [-trace out.json] [-events out.ndjson] [-metrics out.csv]
//	         [-audit summary|all|ID] [-json out.json]
//	         [-repeat N] [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"repro/internal/capplan"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/units"
)

func main() {
	jobs := flag.Int("jobs", 64, "number of jobs in the synthetic trace")
	cap := flag.Float64("cap", 2500, "cluster power cap in watts")
	ranks := flag.Int("ranks", 64, "cluster size in ranks (ignored when -cluster lists explicit pool sizes)")
	clusterName := flag.String("cluster", "systemg", "platform: a preset (systemg, dori) or mixed pools like systemg:32,dori:32")
	capPlan := flag.String("capplan", "", "time-varying cap plan as start:watts windows, e.g. 0:2500,3600:1500,7200:2500 (excludes -cap)")
	capFile := flag.String("capfile", "", "read the cap plan from a t_s,cap_w CSV file (excludes -cap and -capplan)")
	capDump := flag.String("capdump", "", "write the active cap plan to this CSV file (requires -capplan or -capfile)")
	faultSpec := flag.String("faults", "", "fault-injection plan spec, e.g. fail=3@10,mtbf=*:900,mttr=*:120,retries=2,ckpt=30 (excludes -faultfile)")
	faultFile := flag.String("faultfile", "", "read the fault plan from a kind,subject,t0_s,t1_s,value CSV file (excludes -faults)")
	mtbf := flag.Float64("mtbf", 0, "wildcard mean time between failures in seconds for every pool (needs -mttr)")
	mttr := flag.Float64("mttr", 0, "wildcard mean time to repair in seconds for every pool (needs -mtbf)")
	retries := flag.Int("retries", 3, "retry cap: a job killed after this many restarts is permanently lost")
	ckpt := flag.Float64("ckpt", 0, "checkpoint interval in seconds (0 disables periodic checkpoints)")
	restartCost := flag.Float64("restartcost", 0, "restart surcharge in seconds added to every resumed attempt")
	policy := flag.String("policy", "all", "policy to run: fifo, ee-max, fair-share, backfill+<name>, or all")
	backfill := flag.Bool("backfill", false, "wrap every selected policy in EASY backfill reservations")
	reserve := flag.Int("reserve", 1, "hold backfill reservations for the first K blocked jobs (K>1 implies -backfill)")
	seed := flag.Int64("seed", 1, "trace and simulation seed")
	interval := flag.Float64("interval", 0, "governor sampling interval in seconds (0 = the 25ms default; negative is rejected)")
	edge := flag.Bool("edge", false, "retune on admission/completion edges in addition to the sampling grid")
	detail := flag.Bool("detail", false, "print per-job tables")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline (Perfetto) to this file (needs -policy NAME)")
	eventsPath := flag.String("events", "", "write the decision event stream as NDJSON to this file (needs -policy NAME)")
	metricsPath := flag.String("metrics", "", "write sim-time metrics as CSV to this file (needs -policy NAME)")
	audit := flag.String("audit", "", `print a decision audit: "summary", "all", or a job ID (needs -policy NAME)`)
	jsonPath := flag.String("json", "", `write machine-readable results as JSON to this file ("-" = stdout)`)
	verbose := flag.Bool("v", false, "print a one-line host-side summary (wall time, events/s, opcache hit rate, allocations) after each policy run")
	rollup := flag.Float64("rollup", 0, "aggregate -events into sim-time buckets of this width in seconds: a bounded-memory CSV rollup instead of raw NDJSON")
	statusAddr := flag.String("status", "", "serve live run status over HTTP on this address (e.g. :8080 or 127.0.0.1:0): JSON at /status.json, Prometheus text at /metrics")
	repeat := flag.Int("repeat", 1, "run each policy's schedule N times (profiling workload)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the schedule runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the schedule runs to this file")
	flag.Parse()
	if *repeat < 1 {
		*repeat = 1
	}
	if *interval < 0 {
		fmt.Fprintf(os.Stderr, "-interval %g is negative; pass 0 for the 25 ms default or a positive period\n", *interval)
		os.Exit(2)
	}
	if *reserve < 1 {
		fmt.Fprintf(os.Stderr, "-reserve %d must be at least 1\n", *reserve)
		os.Exit(2)
	}

	var plan *capplan.Plan
	switch {
	case *capPlan != "" && *capFile != "":
		fmt.Fprintln(os.Stderr, "-capplan and -capfile are mutually exclusive")
		os.Exit(2)
	case *capPlan != "":
		p, err := capplan.ParsePlan(*capPlan)
		exitOn(err)
		plan = p
	case *capFile != "":
		f, err := os.Open(*capFile)
		exitOn(err)
		p, err := capplan.ReadCSV(f)
		f.Close()
		exitOn(err)
		plan = p
	}
	if plan != nil {
		capSet := false
		flag.Visit(func(f *flag.Flag) { capSet = capSet || f.Name == "cap" })
		if capSet {
			fmt.Fprintln(os.Stderr, "-cap cannot combine with a cap plan; put the constant in the plan's first window instead")
			os.Exit(2)
		}
	}
	// Fault knobs given on the command line override the corresponding
	// plan knobs (flag.Visit distinguishes "explicitly set" from the
	// default), so a CSV plan can be rerun with a different retry cap or
	// checkpoint cadence without editing the file.
	faultKnobs := map[string]bool{}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "mtbf", "mttr", "retries", "ckpt", "restartcost":
			faultKnobs[f.Name] = true
		}
	})
	if faultKnobs["mtbf"] != faultKnobs["mttr"] {
		fmt.Fprintln(os.Stderr, "-mtbf and -mttr must be given together: a failure process without a repair rate (or vice versa) is underspecified")
		os.Exit(2)
	}
	if *mtbf < 0 || *mttr < 0 {
		fmt.Fprintf(os.Stderr, "-mtbf %g / -mttr %g must not be negative\n", *mtbf, *mttr)
		os.Exit(2)
	}
	if *retries < 0 {
		fmt.Fprintf(os.Stderr, "-retries %d must be at least 0\n", *retries)
		os.Exit(2)
	}
	if *ckpt < 0 || *restartCost < 0 {
		fmt.Fprintf(os.Stderr, "-ckpt %g / -restartcost %g must not be negative\n", *ckpt, *restartCost)
		os.Exit(2)
	}
	var fplan *faults.Plan
	switch {
	case *faultSpec != "" && *faultFile != "":
		fmt.Fprintln(os.Stderr, "-faults and -faultfile are mutually exclusive")
		os.Exit(2)
	case *faultSpec != "":
		p, err := faults.ParsePlan(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fplan = p
	case *faultFile != "":
		f, err := os.Open(*faultFile)
		exitOn(err)
		p, err := faults.ReadCSV(f)
		f.Close()
		exitOn(err)
		fplan = p
	}
	if fplan == nil && faultKnobs["mtbf"] {
		fplan = &faults.Plan{MaxRetries: *retries}
	}
	if fplan == nil && len(faultKnobs) > 0 {
		fmt.Fprintln(os.Stderr, "-retries/-ckpt/-restartcost tune a fault plan; give one with -faults, -faultfile or -mtbf/-mttr")
		os.Exit(2)
	}
	if fplan != nil {
		if faultKnobs["mtbf"] {
			// The command-line wildcard replaces a plan's wildcard entry;
			// exact per-pool rates from the plan still win (RatesFor).
			rates := fplan.Rates[:0:0]
			for _, r := range fplan.Rates {
				if r.Pool != "*" {
					rates = append(rates, r)
				}
			}
			fplan.Rates = append(rates, faults.PoolRates{Pool: "*", MTBF: units.Seconds(*mtbf), MTTR: units.Seconds(*mttr)})
		}
		if faultKnobs["retries"] {
			fplan.MaxRetries = *retries
		}
		if faultKnobs["ckpt"] {
			fplan.CheckpointEvery = units.Seconds(*ckpt)
		}
		if faultKnobs["restartcost"] {
			fplan.RestartCost = units.Seconds(*restartCost)
		}
		if err := fplan.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *capDump != "" {
		if plan == nil {
			fmt.Fprintln(os.Stderr, "-capdump needs -capplan or -capfile")
			os.Exit(2)
		}
		if fplan != nil {
			fmt.Fprintln(os.Stderr, "-capdump exports the budget timeline alone and cannot combine with fault injection: power emergencies reshape the effective cap")
			os.Exit(2)
		}
		f, err := os.Create(*capDump)
		exitOn(err)
		err = plan.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		exitOn(err)
	}

	platform, err := machine.ParsePlatform(*clusterName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// A multi-pool platform defines the cluster exactly (every pool's
	// node count); the -ranks default only sizes a bare single preset,
	// whose full node count is far larger than a useful demo cluster.
	// Truncating a mixed platform to a rank prefix would silently strip
	// the later pools, so -ranks and multi-pool are mutually exclusive.
	clusterRanks := *ranks
	if len(platform.Pools) > 1 {
		ranksSet := false
		flag.Visit(func(f *flag.Flag) { ranksSet = ranksSet || f.Name == "ranks" })
		if ranksSet {
			fmt.Fprintf(os.Stderr, "-ranks cannot resize a multi-pool platform; size each pool instead, e.g. -cluster systemg:32,dori:32\n")
			os.Exit(2)
		}
		clusterRanks = 0 // whole platform
	}

	var policies []sched.Policy
	if *policy == "all" {
		all := sched.Policies()
		names := make([]string, 0, len(all))
		for name := range all {
			names = append(names, name)
		}
		sort.Strings(names)
		// Baseline first so the table reads as baseline vs. contenders.
		sort.SliceStable(names, func(a, b int) bool { return names[a] == "fifo" && names[b] != "fifo" })
		for _, name := range names {
			policies = append(policies, all[name])
		}
	} else {
		name := strings.ToLower(*policy)
		wrap := strings.HasPrefix(name, "backfill+")
		p, ok := sched.Policies()[strings.TrimPrefix(name, "backfill+")]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown policy %q (have fifo, ee-max, fair-share, backfill+<name>, all)\n", *policy)
			os.Exit(2)
		}
		if wrap {
			p = sched.Backfill(p)
		}
		policies = []sched.Policy{p}
	}
	if *backfill || *reserve > 1 {
		for i, p := range policies {
			policies[i] = sched.BackfillN(p, *reserve)
		}
	}

	// The telemetry flags record one schedule's decision stream; an
	// interleaving of several independent schedules would attribute
	// events to the wrong run, so they demand a single named policy.
	telemetryOn := *tracePath != "" || *eventsPath != "" || *metricsPath != "" || *audit != ""
	if telemetryOn && len(policies) > 1 {
		fmt.Fprintln(os.Stderr, "-trace/-events/-metrics/-audit record a single schedule; select one policy with -policy NAME")
		os.Exit(2)
	}
	if *rollup < 0 {
		fmt.Fprintf(os.Stderr, "-rollup %g must not be negative\n", *rollup)
		os.Exit(2)
	}
	if *rollup > 0 && *eventsPath == "" {
		fmt.Fprintln(os.Stderr, "-rollup aggregates the -events stream; give it a destination with -events FILE")
		os.Exit(2)
	}
	auditJob := -1
	if *audit != "" && *audit != "summary" && *audit != "all" {
		id, err := strconv.Atoi(*audit)
		if err != nil || id < 0 {
			fmt.Fprintf(os.Stderr, "-audit %q: want \"summary\", \"all\", or a job ID\n", *audit)
			os.Exit(2)
		}
		auditJob = id
	}

	trace := sched.SyntheticTrace(sched.TraceConfig{Jobs: *jobs, Seed: *seed})

	shownRanks := clusterRanks
	if shownRanks == 0 {
		shownRanks = platform.TotalRanks()
	}
	if plan != nil {
		fmt.Printf("trace: %d jobs on %s/%d ranks under cap plan %s (seed %d)\n",
			*jobs, platform, shownRanks, plan, *seed)
	} else {
		fmt.Printf("trace: %d jobs on %s/%d ranks under a %.0f W cap (seed %d)\n",
			*jobs, platform, shownRanks, *cap, *seed)
	}
	if fplan != nil {
		fmt.Printf("faults: %s\n", fplan)
	}
	fmt.Println()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		exitOn(err)
		defer f.Close()
		exitOn(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}

	// The status server outlives individual runs: each policy run
	// publishes snapshots under its own label, and the final snapshot of
	// a finished run stays queryable while later policies execute.
	var srv *obs.StatusServer
	if *statusAddr != "" {
		s, err := obs.ListenStatus(*statusAddr)
		exitOn(err)
		srv = s
		defer srv.Close()
		fmt.Printf("status: http://%s (JSON at /status.json, Prometheus at /metrics)\n\n", srv.Addr())
	}

	var results []sched.Result
	for _, pol := range policies {
		var res sched.Result
		var mem *telemetry.MemorySink
		var host *obs.Host
		for r := 0; r < *repeat; r++ {
			cfg := sched.Config{
				Platform:   platform,
				Ranks:      clusterRanks,
				Policy:     pol,
				Interval:   units.Seconds(*interval),
				EdgeRetune: *edge,
				Seed:       *seed,
			}
			if plan != nil {
				cfg.Plan = plan
			} else {
				cfg.Cap = units.Watts(*cap)
			}
			cfg.Faults = fplan
			// Telemetry records only the final repetition: repetitions
			// are identical, and the earlier ones exist purely as a
			// profiling workload that should stay free of sink I/O.
			var rec *telemetry.Recorder
			var telFiles []*os.File
			if telemetryOn && r == *repeat-1 {
				rec = telemetry.New()
				openSink := func(path string) *os.File {
					f, err := os.Create(path)
					exitOn(err)
					telFiles = append(telFiles, f)
					return f
				}
				if *eventsPath != "" {
					if *rollup > 0 {
						rs, err := telemetry.NewRollupSink(openSink(*eventsPath), units.Seconds(*rollup))
						exitOn(err)
						rec.AddSink(rs)
					} else {
						rec.AddSink(telemetry.NewNDJSONSink(openSink(*eventsPath)))
					}
				}
				if *tracePath != "" {
					rec.AddSink(telemetry.NewChromeTraceSink(openSink(*tracePath)))
				}
				if *audit != "" {
					mem = telemetry.NewMemorySink()
					rec.AddSink(mem)
				}
				if *metricsPath != "" {
					rec.Metrics().StreamCSV(openSink(*metricsPath))
				}
			}
			// Host-side observability: a fresh collector per repetition
			// so phase timers and allocation deltas cover exactly one
			// run; -v prints the final repetition's summary below.
			if *verbose || srv != nil {
				host = obs.NewHost()
				cfg.Obs = host
			}
			if srv != nil {
				// Live publishing needs an event stream to pace it; an
				// otherwise sink-less run gets a recorder carrying only
				// the publisher.
				if rec == nil {
					rec = telemetry.New()
				}
				rec.AddSink(obs.NewPublisher(srv, pol.Name(), host, rec.Metrics(), 0))
			}
			if rec != nil {
				cfg.Telemetry = rec
			}
			s, err := sched.New(cfg)
			exitOn(err)
			res, err = s.Run(trace)
			exitOn(err)
			if rec != nil {
				exitOn(rec.Close())
				exitOn(rec.Err())
				exitOn(rec.Metrics().Err())
				for _, f := range telFiles {
					exitOn(f.Close())
				}
			}
		}
		results = append(results, res)
		if *verbose && host != nil {
			fmt.Printf("host %s: %s\n", res.Policy, host.Summary())
		}
		if *detail {
			fmt.Printf("== %s ==\n%s\n", res.Policy, res.JobTable())
		}
		if mem != nil {
			a := telemetry.NewAudit(mem.Events())
			switch {
			case *audit == "all":
				for _, id := range a.Jobs() {
					exitOn(a.JobReport(os.Stdout, id))
					fmt.Println()
				}
				exitOn(a.Summary(os.Stdout))
			case auditJob >= 0:
				exitOn(a.JobReport(os.Stdout, auditJob))
			default: // "summary"
				exitOn(a.Summary(os.Stdout))
			}
			fmt.Println()
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		exitOn(err)
		runtime.GC()
		exitOn(pprof.WriteHeapProfile(f))
		f.Close()
	}

	fmt.Print(sched.ComparisonTable(results))
	if plan != nil || (fplan != nil && len(fplan.Emergencies) > 0) {
		for _, r := range results {
			fmt.Printf("\nbudget windows — %s (cap utilisation %.1f%%):\n%s",
				r.Policy, r.CapUtilisation*100, r.WindowTable())
		}
	}
	if fplan != nil {
		fmt.Println()
		for _, r := range results {
			fmt.Printf("faults — %s: %d failures, %d repairs, %d kills, %d restarts, %d checkpoints, %d jobs lost, lost work %v, wasted energy %v, availability %.4f\n",
				r.Policy, r.Failures, r.Repairs, r.Kills, r.Restarts, r.Checkpoints, r.JobsLost,
				r.LostWork, r.WastedEnergy, r.Availability)
		}
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		exitOn(err)
		buf = append(buf, '\n')
		if *jsonPath == "-" {
			_, err = os.Stdout.Write(buf)
		} else {
			err = os.WriteFile(*jsonPath, buf, 0o644)
		}
		exitOn(err)
	}

	violated := false
	for _, r := range results {
		if r.CapViolations > 0 {
			fmt.Printf("\nWARNING: %s exceeded the cap in %d of %d samples\n", r.Policy, r.CapViolations, r.Samples)
			violated = true
		}
	}
	lost := 0
	for _, r := range results {
		if r.JobsLost > 0 {
			fmt.Printf("\nWARNING: %s permanently lost %d of %d jobs to failures\n", r.Policy, r.JobsLost, len(r.Jobs))
			lost += r.JobsLost
		}
	}
	if violated || lost > 0 {
		// Distinct statuses — 3 for cap violations, 4 for jobs lost to
		// failures (violations take precedence) — alongside the usage (2)
		// and I/O (1) exits, so CI smoke jobs can assert the
		// zero-violation and all-jobs-complete guarantees on the status
		// alone. os.Exit skips the deferred profile flush, so stop it by
		// hand.
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		if violated {
			os.Exit(3)
		}
		os.Exit(4)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
