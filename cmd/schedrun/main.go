// Command schedrun races the power-budget scheduling policies head to
// head on one synthetic job trace: the same jobs, the same cluster, the
// same power cap — only the policy differs. The comparison table is the
// paper's "power-constrained parallel computation" at fleet scale: the
// iso-energy-efficiency-aware policies should complete the trace at
// least as fast as the FIFO baseline while spending less energy per job
// and never exceeding the cap.
//
// Usage:
//
//	schedrun -jobs 64 -cap 2500 [-ranks 64] [-policy all] [-detail]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/units"
)

func main() {
	jobs := flag.Int("jobs", 64, "number of jobs in the synthetic trace")
	cap := flag.Float64("cap", 2500, "cluster power cap in watts")
	ranks := flag.Int("ranks", 64, "cluster size in ranks")
	clusterName := flag.String("cluster", "systemg", "cluster preset: systemg, dori")
	policy := flag.String("policy", "all", "policy to run: fifo, ee-max, fair-share, or all")
	seed := flag.Int64("seed", 1, "trace and simulation seed")
	interval := flag.Float64("interval", 0, "governor sampling interval in seconds (0 = 25ms)")
	detail := flag.Bool("detail", false, "print per-job tables")
	flag.Parse()

	spec, ok := machine.Presets()[strings.ToLower(*clusterName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown cluster %q\n", *clusterName)
		os.Exit(2)
	}

	var policies []sched.Policy
	if *policy == "all" {
		all := sched.Policies()
		names := make([]string, 0, len(all))
		for name := range all {
			names = append(names, name)
		}
		sort.Strings(names)
		// Baseline first so the table reads as baseline vs. contenders.
		sort.SliceStable(names, func(a, b int) bool { return names[a] == "fifo" && names[b] != "fifo" })
		for _, name := range names {
			policies = append(policies, all[name])
		}
	} else {
		p, ok := sched.Policies()[strings.ToLower(*policy)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown policy %q (have fifo, ee-max, fair-share, all)\n", *policy)
			os.Exit(2)
		}
		policies = []sched.Policy{p}
	}

	trace := sched.SyntheticTrace(sched.TraceConfig{Jobs: *jobs, Seed: *seed})

	fmt.Printf("trace: %d jobs on %s/%d ranks under a %.0f W cap (seed %d)\n\n",
		*jobs, spec.Name, *ranks, *cap, *seed)

	var results []sched.Result
	for _, pol := range policies {
		s, err := sched.New(sched.Config{
			Spec:     spec,
			Ranks:    *ranks,
			Cap:      units.Watts(*cap),
			Policy:   pol,
			Interval: units.Seconds(*interval),
			Seed:     *seed,
		})
		exitOn(err)
		res, err := s.Run(trace)
		exitOn(err)
		results = append(results, res)
		if *detail {
			fmt.Printf("== %s ==\n%s\n", res.Policy, res.JobTable())
		}
	}

	fmt.Print(sched.ComparisonTable(results))
	for _, r := range results {
		if r.CapViolations > 0 {
			fmt.Printf("\nWARNING: %s exceeded the cap in %d of %d samples\n", r.Policy, r.CapViolations, r.Samples)
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
