// Command mpptest derives the machine-dependent parameter vector of a
// simulated cluster the way the paper does on hardware: ping-pong sweeps
// for Ts/Tb (MPPTest), timed probes for tc and tm (Perfmon, LMbench
// lat_mem_rd), power profiling for the idle and delta powers (PowerPack)
// and a DVFS sweep for the power-law exponent γ.
//
// Usage:
//
//	mpptest [-cluster systemg] [-freq 2.8e9] [-noise] [-gamma]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/machine"
	"repro/internal/microbench"
	"repro/internal/units"
)

func main() {
	clusterName := flag.String("cluster", "systemg", "cluster preset: systemg, dori")
	freq := flag.Float64("freq", 0, "frequency in Hz (0 = nominal)")
	noise := flag.Bool("noise", false, "measure with hardware-like noise")
	gamma := flag.Bool("gamma", true, "sweep DVFS ladder and fit γ")
	seed := flag.Int64("seed", 1, "noise seed")
	flag.Parse()

	spec, ok := machine.Presets()[strings.ToLower(*clusterName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown cluster %q\n", *clusterName)
		os.Exit(2)
	}
	f := units.Hertz(*freq)
	if f == 0 {
		f = spec.BaseFreq
	}
	res, err := microbench.DeriveMachineVector(spec, f, *seed, *noise, *gamma)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("measured machine-dependent vector for %s:\n  %v\n", spec.Name, res)

	truth, err := spec.AtFrequency(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("spec truth:\n  f=%v: tc=%v tm=%v Ts=%v Tb=%v Psys-idle=%v ΔPc=%v ΔPm=%v γ=%.2f\n",
		truth.Freq, truth.Tc, truth.Tm, truth.Ts, truth.Tb, truth.PsysIdle, truth.DeltaPc, truth.DeltaPm, spec.Gamma)
}
