// Command isoee evaluates the iso-energy-efficiency model: point
// predictions, EE surfaces over (p, f) or (p, n), the iso-energy
// function n(p), and power-budget operating points.
//
// Usage:
//
//	isoee -app ft -n 2097152 -p 16                      # one prediction
//	isoee -app cg -n 75000 -surface pf                  # Figure-9 style
//	isoee -app ft -surface pn                           # Figure-6 style
//	isoee -app ft -iso 0.75                             # n(p) table
//	isoee -app cg -n 75000 -budget 2000                 # power planning
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/units"
)

func main() {
	appName := flag.String("app", "ft", "application vector: ft, ep, cg, is, mg")
	n := flag.Float64("n", 1<<21, "problem size")
	p := flag.Int("p", 16, "parallelism")
	freq := flag.Float64("freq", 0, "CPU frequency in Hz (0 = nominal)")
	clusterName := flag.String("cluster", "systemg", "cluster preset: systemg, dori")
	surface := flag.String("surface", "", "render a surface: pf or pn")
	iso := flag.Float64("iso", 0, "solve the iso-energy function n(p) for this EE target")
	budget := flag.Float64("budget", 0, "optimise (p, f) under this power budget in watts")
	flag.Parse()

	spec, ok := machine.Presets()[strings.ToLower(*clusterName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown cluster %q\n", *clusterName)
		os.Exit(2)
	}
	vector, err := app.ByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	f := units.Hertz(*freq)
	if f == 0 {
		f = spec.BaseFreq
	}
	ps := []int{1, 2, 4, 8, 16, 32, 64, 128}

	switch {
	case *surface == "pf":
		var fs []units.Hertz
		fs = append(fs, spec.Frequencies...)
		s, err := analysis.SurfacePF(spec, vector, *n, ps, fs)
		exitOn(err)
		fmt.Print(s.Render())
	case *surface == "pn":
		ns := []float64{*n / 16, *n / 4, *n, *n * 4, *n * 16}
		s, err := analysis.SurfacePN(spec, vector, f, ps, ns)
		exitOn(err)
		fmt.Print(s.Render())
	case *iso > 0:
		fn, err := analysis.IsoEnergyFunction(spec, vector, f, ps[1:], *iso, 16, 1e12)
		exitOn(err)
		fmt.Printf("iso-energy-efficiency function for %s, EE ≥ %.2f:\n", vector.Name, *iso)
		for _, pp := range ps[1:] {
			fmt.Printf("  p=%4d  n ≥ %.4g\n", pp, fn[pp])
		}
	case *budget > 0:
		op, err := analysis.OptimizeUnderPowerBudget(machine.Homogeneous(spec), vector, *n, ps, units.Watts(*budget))
		exitOn(err)
		fmt.Printf("best operating point under %.0f W for %s at n=%g:\n", *budget, vector.Name, *n)
		fmt.Printf("  p=%d f=%v: Tp=%v Ep=%v EE=%.4f avg power=%v\n",
			op.P, op.Freq, op.Tp, op.Ep, op.EE, op.AvgPower)
	default:
		mp, err := spec.AtFrequency(f)
		exitOn(err)
		pr, err := core.Model{Machine: mp, App: vector.At(*n, *p)}.Predict()
		exitOn(err)
		fmt.Printf("%s on %s at n=%g p=%d f=%v:\n", vector.Name, spec.Name, *n, *p, f)
		fmt.Printf("  T1=%v Tp=%v speedup=%.2f PE=%.4f\n", pr.T1, pr.Tp, pr.Speedup, pr.PE)
		fmt.Printf("  E1=%v Ep=%v Eo=%v\n", pr.E1, pr.Ep, pr.Eo)
		fmt.Printf("  EEF=%.4f EE=%.4f avg power=%v\n", pr.EEF, pr.EE, pr.AvgPower)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
