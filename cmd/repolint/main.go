// Command repolint runs the repository's custom static-analysis suite
// (internal/lint) over the given package patterns:
//
//	go run ./cmd/repolint ./...         # the whole tree, as CI does
//	go run ./cmd/repolint ./internal/sched ./cmd/...
//	go run ./cmd/repolint -fix ./...    # also apply suggested fixes
//
// The analyzers and the invariants they encode — detmaprange, simclock,
// telguard, unitmix — are documented in internal/lint and DESIGN.md §10,
// together with the //lint:wallclock and //lint:orderinsensitive escape
// hatches.
//
// Exit code contract (pinned by cmd/repolint tests): 0 when the tree is
// clean, 1 on any diagnostic (even if -fix repaired it), 2 on usage or
// load errors. The binary runs standalone rather than as a `go vet
// -vettool`: the vettool wire protocol needs x/tools' unitchecker,
// which this offline-buildable module deliberately does not depend on.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	fix := flag.Bool("fix", false, "apply suggested fixes in place")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: repolint [-fix] package-patterns...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		return 2
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}
	var paths []string
	for _, pat := range patterns {
		ps, err := loader.Expand(pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 2
		}
		paths = append(paths, ps...)
	}
	var pkgs []*lint.Package
	loadFailed := false
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			loadFailed = true
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	if loadFailed {
		return 2
	}

	diags, err := lint.Run(lint.Default(), pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		fmt.Printf("%s:%d:%d: %s [%s]\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
		for _, f := range d.Fixes {
			fmt.Printf("\tsuggested fix: %s\n", f.Message)
		}
	}
	if *fix {
		written, err := lint.ApplyFixes(loader.Fset, pkgs, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint: fix:", err)
			return 2
		}
		for _, name := range written {
			fmt.Printf("fixed: %s\n", name)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
