package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles repolint once per test binary into a temp dir.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "repolint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module badmod\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runLint(t *testing.T, bin, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run repolint: %v\n%s", err, buf.String())
	}
	return buf.String(), code
}

// TestInjectedWallClockFails pins the acceptance contract: a seeded bad
// module with time.Now() injected into an internal/sched package (plus
// an unsorted map range) makes repolint exit 1 and name both findings —
// the failure mode the CI lint step would produce on such a change to
// the real tree.
func TestInjectedWallClockFails(t *testing.T) {
	bin := buildBinary(t)
	root := writeModule(t, map[string]string{
		"internal/sched/sched.go": `package sched

import (
	"fmt"
	"time"
)

func Stamp() string {
	return time.Now().String()
}

func Dump(m map[int]string) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`,
	})
	out, code := runLint(t, bin, root, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	for _, want := range []string{
		"time.Now", "[simclock]",
		"order-dependent", "[detmaprange]",
		"sched.go",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCleanModuleExitsZero pins the other side of the exit-code
// contract.
func TestCleanModuleExitsZero(t *testing.T) {
	bin := buildBinary(t)
	root := writeModule(t, map[string]string{
		"internal/sched/sched.go": `package sched

// Add is invariant-free.
func Add(a, b int) int { return a + b }
`,
	})
	out, code := runLint(t, bin, root, "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("expected silence on a clean tree, got:\n%s", out)
	}
}

// TestUsageAndLoadErrorsExitTwo distinguishes misuse from findings.
func TestUsageAndLoadErrorsExitTwo(t *testing.T) {
	bin := buildBinary(t)
	root := writeModule(t, map[string]string{
		"broken/broken.go": `package broken

func Oops() int { return undefinedIdent }
`,
	})
	if out, code := runLint(t, bin, root); code != 2 {
		t.Errorf("no-args exit code = %d, want 2\n%s", code, out)
	}
	if out, code := runLint(t, bin, root, "./broken"); code != 2 {
		t.Errorf("type-error exit code = %d, want 2\n%s", code, out)
	}
}

// TestFixRewritesMapRange exercises -fix end to end: the suggested
// sort-keys rewrite is applied in place — inserting the "sort" import
// the file lacks, exactly once even with two fixes in the file — and
// the rewritten module re-runs clean (exit 1 reflects findings, not
// post-fix state; the clean re-run also proves the fixed file still
// type-checks).
func TestFixRewritesMapRange(t *testing.T) {
	bin := buildBinary(t)
	root := writeModule(t, map[string]string{
		"internal/sched/sched.go": `package sched

import (
	"fmt"
	"strings"
)

func Dump(m map[int]string) {
	for k, v := range m {
		fmt.Println(k, strings.ToUpper(v))
	}
}

func Keys(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
`,
	})
	out, code := runLint(t, bin, root, "-fix", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings existed)\n%s", code, out)
	}
	if !strings.Contains(out, "fixed: ") {
		t.Fatalf("expected a fixed: line\n%s", out)
	}
	src, err := os.ReadFile(filepath.Join(root, "internal", "sched", "sched.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })") {
		t.Fatalf("fix not applied:\n%s", src)
	}
	if n := strings.Count(string(src), "\"sort\""); n != 1 {
		t.Fatalf("want the sort import inserted exactly once, got %d:\n%s", n, src)
	}
	if !strings.Contains(string(src), "\t\"fmt\"\n\t\"sort\"\n\t\"strings\"\n") {
		t.Fatalf("sort import not in sorted position in the group:\n%s", src)
	}
	out, code = runLint(t, bin, root, "./...")
	if code != 0 {
		t.Fatalf("post-fix run: exit code = %d, want 0\n%s", code, out)
	}
}
