// Command traceq queries NDJSON decision traces offline (the logs
// schedrun -events and fedrun -events write). It is a thin CLI over
// internal/traceq:
//
//	traceq why <job> <trace.ndjson>     one job's causal admission chain
//	traceq critpath <trace.ndjson>      longest dependency chain to makespan
//	traceq windows <trace.ndjson>       per-cap-window rollup table
//	traceq merge [site=]a.ndjson ...    deterministic cross-site merge (NDJSON on stdout)
//
// Exit codes: 0 success, 1 I/O or query error, 2 usage.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/telemetry"
	"repro/internal/traceq"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: traceq <command> [args]

commands:
  why <job> <trace.ndjson>      explain one job: lifecycle, ranked block
                                reasons, and the causal admission chain
  critpath <trace.ndjson>       the longest wait/run dependency chain
                                ending at the last completion
  windows <trace.ndjson>        per-cap-window rollup table
  merge [site=]a.ndjson [site=]b.ndjson ...
                                merge traces by sim time into one NDJSON
                                stream on stdout, stamping Site from the
                                optional site= label (default: file base
                                name) on events that carry none
`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "traceq: %v\n", err)
	os.Exit(1)
}

func load(path string) []telemetry.Event {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	evs, err := telemetry.DecodeNDJSON(f)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return evs
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "why":
		if len(os.Args) != 4 {
			usage()
		}
		job, err := strconv.Atoi(os.Args[2])
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceq: job must be an integer, got %q\n", os.Args[2])
			usage()
		}
		if err := traceq.Why(os.Stdout, load(os.Args[3]), job); err != nil {
			fail(err)
		}
	case "critpath":
		if len(os.Args) != 3 {
			usage()
		}
		if err := traceq.Critpath(os.Stdout, load(os.Args[2])); err != nil {
			fail(err)
		}
	case "windows":
		if len(os.Args) != 3 {
			usage()
		}
		if err := traceq.Windows(os.Stdout, load(os.Args[2])); err != nil {
			fail(err)
		}
	case "merge":
		if len(os.Args) < 3 {
			usage()
		}
		var traces []traceq.NamedTrace
		for _, arg := range os.Args[2:] {
			site, path := "", arg
			if i := strings.Index(arg, "="); i > 0 && !strings.Contains(arg[:i], string(os.PathSeparator)) {
				site, path = arg[:i], arg[i+1:]
			}
			if site == "" {
				site = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			}
			traces = append(traces, traceq.NamedTrace{Site: site, Events: load(path)})
		}
		if err := traceq.Merge(os.Stdout, traces); err != nil {
			fail(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "traceq: unknown command %q\n", os.Args[1])
		usage()
	}
}
