// Command fedrun races federated budget-split and job-routing policies
// head to head on one synthetic trace: the same jobs, the same sites,
// the same global power budget — only the federation policy pair
// differs. Each run routes every job to a site through the ingest
// frontend, executes all site schedulers concurrently under the caps
// the split policy carved from the global budget, and merges the
// per-site accounting into one federated result (internal/fed).
//
// Sites are named platform specs: -sites "east=systemg:16;west=dori:16"
// builds two clusters from the machine presets (pool lists like
// systemg:32,dori:32 work per site too). Optional knobs attach per
// site by name: -carbon "east=0:420,2:120;west=0:120,2:420" gives each
// site a carbon-intensity signal in gCO₂eq/kWh (sampled step-wise, the
// capplan.FromSignal contract), and -local "west=0:2000" clamps a site
// under its own facility ceiling.
//
// The global budget is -budget "0:1800,2:1200,4:1800" (a capplan spec;
// a mid-trace squeeze in this example) or a constant -cap watts. The
// split policy divides every budget window across sites — static-share
// by weights, greedy-ee by live operating mix (re-negotiated at plan
// breakpoints through sim-time barriers), carbon-min away from
// carbon-dirty windows — with -lambda fixing the guaranteed fraction
// every site keeps regardless of policy. The route policy assigns jobs
// to sites: ee by quoted energy-efficiency with backlog spilling, jct
// by predicted completion, rr round-robin. -split all / -route all
// sweep every combination into one comparison table.
//
// Mirroring schedrun's conventions: -json dumps machine-readable
// results ("-" = stdout), -detail prints per-site and routing tables,
// and the exit status encodes the run's guarantees — 2 for usage
// errors, 1 for I/O, 3 when any site violated its cap in any
// combination, 4 when any job was permanently lost (violations take
// precedence) — so CI smoke jobs assert the federated zero-violation
// guarantee on the status alone.
//
// Observability follows the same single-run rule as schedrun: -events
// PREFIX (needs one -split and one -route) writes each site's decision
// stream to PREFIX-<site>.ndjson — every event stamped with its site,
// so `traceq merge` reassembles the federation's global timeline — plus
// the frontend's routing stream to PREFIX-route.ndjson. -status ADDR
// serves live per-site snapshots (JSON at /status.json, Prometheus text
// at /metrics) while the sites run.
//
// Usage:
//
//	fedrun -jobs 32 -sites "east=systemg:16;west=systemg:16"
//	       [-budget 0:1800,2:1200,4:1800 | -cap 1800]
//	       [-carbon "east=0:420,2:120;west=0:120,2:420"]
//	       [-local "west=0:2000"] [-split all] [-route all]
//	       [-lambda 0.5] [-batch S] [-spill S] [-policy ee-max]
//	       [-seed 1] [-detail] [-events PREFIX] [-status :8080]
//	       [-json out.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/capplan"
	"repro/internal/fed"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/units"
)

func main() {
	jobs := flag.Int("jobs", 32, "number of jobs in the synthetic trace")
	sitesSpec := flag.String("sites", "east=systemg:16;west=systemg:16", `federation sites as name=platform pairs, e.g. "east=systemg:16;west=dori:16"`)
	capW := flag.Float64("cap", 1800, "constant global power budget in watts")
	budget := flag.String("budget", "", "time-varying global budget as start:watts windows, e.g. 0:1800,2:1200,4:1800 (excludes -cap)")
	carbon := flag.String("carbon", "", `per-site carbon signals as name=t:val,... pairs, e.g. "east=0:420,2:120;west=0:120,2:420" (gCO₂eq/kWh)`)
	local := flag.String("local", "", `per-site local cap ceilings as name=planspec pairs, e.g. "west=0:2000"`)
	split := flag.String("split", "all", "budget-split policy: static-share, greedy-ee, carbon-min, or all")
	route := flag.String("route", "all", "job-route policy: ee, jct, rr, or all")
	lambda := flag.Float64("lambda", 0, "guaranteed fraction λ of every window divided by static shares (0 = the 0.5 default)")
	batch := flag.Float64("batch", 0, "ingest batching period in seconds (0 routes at exact arrivals)")
	spill := flag.Float64("spill", 0, "backlog threshold in seconds for the ee route's spill rule (0 = the 1 s default, negative disables)")
	slack := flag.Float64("slack", 0, "eligibility slack: a site must quote within this factor of the fastest site (0 = the 1.3 default; raise it to route onto much slower platforms)")
	policy := flag.String("policy", "ee-max", "site scheduler policy: fifo, ee-max, fair-share, or backfill+<name>")
	seed := flag.Int64("seed", 1, "trace and simulation seed")
	detail := flag.Bool("detail", false, "print per-site and routing tables for every combination")
	jsonPath := flag.String("json", "", `write machine-readable results as JSON to this file ("-" = stdout)`)
	eventsPrefix := flag.String("events", "", "write per-site decision streams as NDJSON to PREFIX-<site>.ndjson plus the routing stream to PREFIX-route.ndjson (needs a single -split and -route)")
	statusAddr := flag.String("status", "", "serve live per-site run status over HTTP on this address (e.g. :8080): JSON at /status.json, Prometheus text at /metrics")
	flag.Parse()

	var plan *capplan.Plan
	if *budget != "" {
		capSet := false
		flag.Visit(func(f *flag.Flag) { capSet = capSet || f.Name == "cap" })
		if capSet {
			usage("-cap cannot combine with -budget; put the constant in the plan's first window instead")
		}
		p, err := capplan.ParsePlan(*budget)
		if err != nil {
			usage(err.Error())
		}
		plan = p
	} else {
		plan = capplan.Constant(units.Watts(*capW))
	}

	sites := parseSites(*sitesSpec)
	attach(*carbon, "-carbon", sites, func(s *fed.Site, spec string) error {
		signal, err := parseSignal(spec)
		if err != nil {
			return err
		}
		s.Carbon = signal
		return nil
	})
	attach(*local, "-local", sites, func(s *fed.Site, spec string) error {
		p, err := capplan.ParsePlan(spec)
		if err != nil {
			return err
		}
		s.Local = p
		return nil
	})

	name := strings.ToLower(*policy)
	pol, ok := sched.Policies()[strings.TrimPrefix(name, "backfill+")]
	if !ok {
		usage(fmt.Sprintf("unknown policy %q (have fifo, ee-max, fair-share, backfill+<name>)", *policy))
	}
	if strings.HasPrefix(name, "backfill+") {
		pol = sched.Backfill(pol)
	}

	splits := pickPolicies(*split, "-split", splitNames())
	routes := pickPolicies(*route, "-route", routeNames())

	// Per-site traces and live status label by site name; sweeping
	// several combinations would interleave streams under the same
	// labels, so both demand a single federated run.
	obsOn := *eventsPrefix != "" || *statusAddr != ""
	if obsOn && (len(splits) > 1 || len(routes) > 1) {
		usage("-events/-status record a single federated run; select one -split and one -route")
	}
	var srv *obs.StatusServer
	if *statusAddr != "" {
		s, err := obs.ListenStatus(*statusAddr)
		exitOn(err)
		srv = s
		defer srv.Close()
		fmt.Printf("status: http://%s (JSON at /status.json, Prometheus at /metrics)\n\n", srv.Addr())
	}

	// The default trace (jobs are moldable, so widths clamp to each
	// site's pools) keeps a 1-site fedrun on the same trace schedrun
	// generates — the byte-identity CI smoke relies on that.
	trace := sched.SyntheticTrace(sched.TraceConfig{Jobs: *jobs, Seed: *seed})
	fmt.Printf("trace: %d jobs across %d sites under global budget %s (seed %d)\n\n",
		*jobs, len(sites), plan, *seed)

	var results []fed.Result
	for _, sp := range splits {
		for _, rt := range routes {
			cfg := fed.Config{
				Sites:         sites,
				Budget:        plan,
				Split:         fed.SplitPolicies()[sp](),
				Route:         fed.RoutePolicies()[rt](),
				GuaranteeFrac: *lambda,
				BatchEvery:    units.Seconds(*batch),
				SpillAfter:    units.Seconds(*spill),
				PerfSlack:     *slack,
				Policy:        pol,
				Seed:          *seed,
			}
			// One recorder and one obs.Host per site — sites run on
			// their own goroutines and must not share either. Hosts are
			// created lazily so SiteObs and SiteTelemetry agree on the
			// instance regardless of call order.
			var recs []*telemetry.Recorder
			var files []*os.File
			if obsOn {
				hosts := map[string]*obs.Host{}
				hostFor := func(site string) *obs.Host {
					if h, ok := hosts[site]; ok {
						return h
					}
					h := obs.NewHost()
					hosts[site] = h
					return h
				}
				if srv != nil {
					cfg.SiteObs = hostFor
				}
				cfg.SiteTelemetry = func(site string) *telemetry.Recorder {
					rec := telemetry.New()
					if *eventsPrefix != "" {
						f, err := os.Create(fmt.Sprintf("%s-%s.ndjson", *eventsPrefix, site))
						exitOn(err)
						files = append(files, f)
						rec.AddSink(telemetry.WithSite(site, telemetry.NewNDJSONSink(f)))
					}
					if srv != nil {
						rec.AddSink(obs.NewPublisher(srv, site, hostFor(site), rec.Metrics(), 0))
					}
					recs = append(recs, rec)
					return rec
				}
				if *eventsPrefix != "" {
					f, err := os.Create(*eventsPrefix + "-route.ndjson")
					exitOn(err)
					files = append(files, f)
					froute := telemetry.New(telemetry.NewNDJSONSink(f))
					cfg.Telemetry = froute
					recs = append(recs, froute)
				}
			}
			res, err := fed.Run(cfg, trace)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for _, rec := range recs {
				exitOn(rec.Close())
				exitOn(rec.Err())
			}
			for _, f := range files {
				exitOn(f.Close())
			}
			results = append(results, res)
			if *detail {
				fmt.Printf("== %s × %s ==\n%s\nrouting:\n%s\n", res.Split, res.Route, res, res.RoutingTable())
			}
		}
	}

	fmt.Print(fed.ComparisonTable(results))

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		exitOn(err)
		buf = append(buf, '\n')
		if *jsonPath == "-" {
			_, err = os.Stdout.Write(buf)
		} else {
			err = os.WriteFile(*jsonPath, buf, 0o644)
		}
		exitOn(err)
	}

	violated, lost := false, false
	for _, r := range results {
		if r.CapViolations > 0 {
			fmt.Printf("\nWARNING: %s × %s exceeded a site cap in %d samples\n", r.Split, r.Route, r.CapViolations)
			violated = true
		}
		if r.JobsLost > 0 {
			fmt.Printf("\nWARNING: %s × %s permanently lost %d jobs to failures\n", r.Split, r.Route, r.JobsLost)
			lost = true
		}
	}
	// Same contract as schedrun: 3 for cap violations, 4 for lost jobs,
	// violations take precedence.
	if violated {
		os.Exit(3)
	}
	if lost {
		os.Exit(4)
	}
}

// parseSites builds the site list from "name=platform;..." pairs,
// preserving command-line order (site order is part of the federation's
// deterministic identity).
func parseSites(spec string) []fed.Site {
	var sites []fed.Site
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, pl, ok := strings.Cut(part, "=")
		if !ok {
			usage(fmt.Sprintf("-sites entry %q is not name=platform", part))
		}
		platform, err := machine.ParsePlatform(strings.TrimSpace(pl))
		if err != nil {
			usage(err.Error())
		}
		sites = append(sites, fed.Site{Name: strings.TrimSpace(name), Platform: platform})
	}
	if len(sites) == 0 {
		usage("-sites names no sites")
	}
	return sites
}

// attach applies a per-site "name=spec;..." flag to the named sites.
func attach(flagVal, flagName string, sites []fed.Site, set func(*fed.Site, string) error) {
	for _, part := range strings.Split(flagVal, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		if !ok {
			usage(fmt.Sprintf("%s entry %q is not name=spec", flagName, part))
		}
		name = strings.TrimSpace(name)
		found := false
		for i := range sites {
			if sites[i].Name == name {
				if err := set(&sites[i], strings.TrimSpace(spec)); err != nil {
					usage(fmt.Sprintf("%s %s: %v", flagName, name, err))
				}
				found = true
				break
			}
		}
		if !found {
			usage(fmt.Sprintf("%s names unknown site %q", flagName, name))
		}
	}
}

// parseSignal parses a "t:value,..." sample list.
func parseSignal(spec string) ([]capplan.Sample, error) {
	var signal []capplan.Sample
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		tStr, vStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("sample %q is not t:value", part)
		}
		t, err0 := strconv.ParseFloat(strings.TrimSpace(tStr), 64)
		v, err1 := strconv.ParseFloat(strings.TrimSpace(vStr), 64)
		if err0 != nil || err1 != nil {
			return nil, fmt.Errorf("bad sample %q", part)
		}
		signal = append(signal, capplan.Sample{T: units.Seconds(t), Value: v})
	}
	return signal, capplan.ValidateSignal(signal)
}

// pickPolicies resolves a policy flag against a registry's names:
// a single name, or "all" for the whole registry with the baseline
// (static-share / ee) leading the sweep.
func pickPolicies(val, flagName string, names []string) []string {
	if val != "all" {
		for _, n := range names {
			if n == val {
				return []string{val}
			}
		}
		usage(fmt.Sprintf("%s %q: have %s, all", flagName, val, strings.Join(names, ", ")))
	}
	return names
}

func splitNames() []string {
	names := sortedKeys(fed.SplitPolicies())
	sort.SliceStable(names, func(a, b int) bool { return names[a] == "static-share" && names[b] != "static-share" })
	return names
}

func routeNames() []string {
	names := sortedKeys(fed.RoutePolicies())
	sort.SliceStable(names, func(a, b int) bool { return names[a] == "ee" && names[b] != "ee" })
	return names
}

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func usage(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(2)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
