// Command npbrun executes one NAS-style kernel on a simulated
// power-aware cluster and reports time, energy, counters and the traced
// communication volume.
//
// Usage:
//
//	npbrun -bench ft -class S -p 8 [-cluster systemg] [-freq 2.4e9]
//	       [-noise] [-seed N] [-counters]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/machine"
	"repro/internal/npb"
	"repro/internal/npb/cg"
	"repro/internal/npb/ep"
	"repro/internal/npb/ft"
	"repro/internal/npb/is"
	"repro/internal/npb/mg"
	"repro/internal/units"
)

func makeKernel(bench, class string) (npb.Kernel, error) {
	switch strings.ToLower(bench) {
	case "ep":
		cfg, ok := ep.Classes()[class]
		if !ok {
			return nil, fmt.Errorf("ep: unknown class %q", class)
		}
		return ep.New(cfg)
	case "ft":
		cfg, ok := ft.Classes()[class]
		if !ok {
			return nil, fmt.Errorf("ft: unknown class %q", class)
		}
		return ft.New(cfg)
	case "cg":
		cfg, ok := cg.Classes()[class]
		if !ok {
			return nil, fmt.Errorf("cg: unknown class %q", class)
		}
		return cg.New(cfg)
	case "is":
		cfg, ok := is.Classes()[class]
		if !ok {
			return nil, fmt.Errorf("is: unknown class %q", class)
		}
		return is.New(cfg)
	case "mg":
		cfg, ok := mg.Classes()[class]
		if !ok {
			return nil, fmt.Errorf("mg: unknown class %q", class)
		}
		return mg.New(cfg)
	default:
		return nil, fmt.Errorf("unknown benchmark %q (have ep, ft, cg, is, mg)", bench)
	}
}

func main() {
	bench := flag.String("bench", "ep", "kernel: ep, ft, cg, is, mg")
	class := flag.String("class", "S", "problem class: T, S, W, A, B")
	p := flag.Int("p", 4, "number of ranks")
	clusterName := flag.String("cluster", "systemg", "cluster preset: systemg, dori")
	freq := flag.Float64("freq", 0, "CPU frequency in Hz (0 = nominal)")
	noise := flag.Bool("noise", true, "enable hardware-like execution/measurement noise")
	seed := flag.Int64("seed", 1, "noise seed")
	counters := flag.Bool("counters", false, "dump per-rank performance counters")
	flag.Parse()

	spec, ok := machine.Presets()[strings.ToLower(*clusterName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown cluster %q\n", *clusterName)
		os.Exit(2)
	}
	k, err := makeKernel(*bench, *class)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := cluster.Config{
		Spec:  spec,
		Freq:  units.Hertz(*freq),
		Ranks: *p,
		Alpha: k.Alpha(),
		Seed:  *seed,
	}
	if *noise {
		cfg.Noise = cluster.DefaultNoise()
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err := npb.Run(cl, k)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(rep)
	fmt.Printf("energy breakdown: %v\n", rep.Measured)
	fmt.Printf("phases:\n%s", cl.Tracer().Summary())
	if *counters {
		fmt.Printf("counters:\n%s", cl.Counters())
	}
}
