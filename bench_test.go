package repro_test

// The bench harness regenerates every table and figure of the paper's
// evaluation (one benchmark per figure; see DESIGN.md §4) plus the
// ablation studies of DESIGN.md §5 and micro-benchmarks of the substrate.
//
// Figures print their rendered body once per `go test -bench` run and
// report their headline quantity through b.ReportMetric, so the bench
// output doubles as the experimental record (EXPERIMENTS.md is produced
// from it).

import (
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/npb"
	"repro/internal/npb/ft"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// benchOptions selects full paper-scale sweeps by default and reduced
// sizes under -short.
func benchOptions() figures.Options {
	return figures.Options{Seed: 42, Quick: testing.Short()}
}

// runFigure executes a figure generator b.N times (expensive generators
// naturally run once under the default benchtime) and prints the last
// rendering.
func runFigure(b *testing.B, id string) figures.Figure {
	b.Helper()
	g, err := figures.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	benchOpts := benchOptions()
	var fig figures.Figure
	for i := 0; i < b.N; i++ {
		fig, err = g.Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "\n%s\n", fig)
	return fig
}

// csvColumn extracts a named float column from a figure CSV.
func csvColumn(b *testing.B, csv, name string) []float64 {
	b.Helper()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	header := strings.Split(lines[0], ",")
	col := -1
	for i, h := range header {
		if h == name {
			col = i
		}
	}
	if col < 0 {
		b.Fatalf("column %q not in %q", name, lines[0])
	}
	var out []float64
	for _, line := range lines[1:] {
		parts := strings.Split(line, ",")
		if len(parts) <= col {
			continue
		}
		var v float64
		if _, err := fmt.Sscan(parts[col], &v); err != nil {
			continue
		}
		out = append(out, v)
	}
	return out
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// --- one benchmark per paper figure ---

func BenchmarkFigure2aFTEfficiency(b *testing.B) {
	fig := runFigure(b, "2a")
	ee := csvColumn(b, fig.CSV, "energy_eff")
	b.ReportMetric(ee[len(ee)-1], "EE@maxP")
}

func BenchmarkFigure2bCGEfficiency(b *testing.B) {
	fig := runFigure(b, "2b")
	ee := csvColumn(b, fig.CSV, "energy_eff")
	b.ReportMetric(ee[len(ee)-1], "EE@maxP")
}

func BenchmarkFigure3DoriValidation(b *testing.B) {
	fig := runFigure(b, "3")
	errs := csvColumn(b, fig.CSV, "rel_error")
	worst := 0.0
	for _, e := range errs {
		if e > worst {
			worst = e
		}
	}
	b.ReportMetric(worst*100, "worst-err-%")
	b.ReportMetric(mean(errs)*100, "avg-err-%")
}

func BenchmarkFigure4SystemGErrorRate(b *testing.B) {
	fig := runFigure(b, "4")
	errs := csvColumn(b, fig.CSV, "rel_error")
	b.ReportMetric(mean(errs)*100, "avg-err-%")
}

func BenchmarkFigure5FTSurfacePF(b *testing.B) {
	fig := runFigure(b, "5")
	ee := csvColumn(b, fig.CSV, "ee")
	b.ReportMetric(ee[len(ee)-1], "EE@maxP-maxF")
}

func BenchmarkFigure6FTSurfacePN(b *testing.B) {
	fig := runFigure(b, "6")
	ee := csvColumn(b, fig.CSV, "ee")
	b.ReportMetric(ee[len(ee)-1], "EE@maxP-maxN")
}

func BenchmarkFigure7EPSurfacePF(b *testing.B) {
	fig := runFigure(b, "7")
	ee := csvColumn(b, fig.CSV, "ee")
	min := 1.0
	for _, v := range ee {
		if v < min {
			min = v
		}
	}
	b.ReportMetric(min, "min-EE")
}

func BenchmarkFigure8SurfacePN(b *testing.B) {
	fig := runFigure(b, "8")
	ee := csvColumn(b, fig.CSV, "ee")
	b.ReportMetric(mean(ee), "mean-EE")
}

func BenchmarkFigure9CGSurfacePF(b *testing.B) {
	fig := runFigure(b, "9")
	ee := csvColumn(b, fig.CSV, "ee")
	b.ReportMetric(ee[len(ee)-1], "EE@maxP-2.8GHz")
}

func BenchmarkFigure10PowerProfile(b *testing.B) {
	fig := runFigure(b, "10")
	total := csvColumn(b, fig.CSV, "total_w")
	peak := 0.0
	for _, v := range total {
		if v > peak {
			peak = v
		}
	}
	b.ReportMetric(peak, "peak-W")
}

// BenchmarkDiscussionFactors quantifies §V.B.4–7: the EE sensitivity of
// each benchmark to p, n and f.
func BenchmarkDiscussionFactors(b *testing.B) {
	mpHigh := machine.SystemG().MustBase()
	mpLow, err := machine.SystemG().AtFrequency(2.0 * units.GHz)
	if err != nil {
		b.Fatal(err)
	}
	type row struct {
		name       string
		v          app.Vector
		n          float64
		dP, dN, dF float64
	}
	vectors := []row{
		{name: "FT", v: app.FT(20), n: 1 << 21},
		{name: "EP", v: app.EP(), n: 1e8},
		{name: "CG", v: app.CG(11, 15), n: 75000},
	}
	ee := func(mp machine.Params, v app.Vector, n float64, p int) float64 {
		pr, err := core.Model{Machine: mp, App: v.At(n, p)}.Predict()
		if err != nil {
			b.Fatal(err)
		}
		return pr.EE
	}
	for i := 0; i < b.N; i++ {
		for j := range vectors {
			r := &vectors[j]
			r.dP = ee(mpHigh, r.v, r.n, 64) - ee(mpHigh, r.v, r.n, 4)
			r.dN = ee(mpHigh, r.v, r.n*8, 16) - ee(mpHigh, r.v, r.n/8, 16)
			r.dF = ee(mpHigh, r.v, r.n, 16) - ee(mpLow, r.v, r.n, 16)
		}
	}
	fmt.Fprintf(os.Stderr, "\n== §V.B discussion: ΔEE when scaling p (4→64), n (÷8→×8), f (2.0→2.8GHz) ==\n")
	for _, r := range vectors {
		fmt.Fprintf(os.Stderr, "%4s ΔEE(p)=%+.4f ΔEE(n)=%+.4f ΔEE(f)=%+.4f\n", r.name, r.dP, r.dN, r.dF)
	}
	b.ReportMetric(vectors[2].dF, "CG-dEE-df")
}

// --- ablation benches (DESIGN.md §5) ---

// BenchmarkAblationOverlap: ignoring computational overlap (α=1) inflates
// predicted times and energies — the reason the paper introduces α.
func BenchmarkAblationOverlap(b *testing.B) {
	mp := machine.SystemG().MustBase()
	w := app.FT(20).At(1<<21, 16)
	var inflation float64
	for i := 0; i < b.N; i++ {
		withAlpha, err := (core.Model{Machine: mp, App: w}).Predict()
		if err != nil {
			b.Fatal(err)
		}
		w1 := w
		w1.Alpha = 1
		noAlpha, err := (core.Model{Machine: mp, App: w1}).Predict()
		if err != nil {
			b.Fatal(err)
		}
		inflation = float64(noAlpha.Ep)/float64(withAlpha.Ep) - 1
	}
	fmt.Fprintf(os.Stderr, "\n== ablation: dropping α inflates predicted FT energy by %.1f%% ==\n", inflation*100)
	b.ReportMetric(inflation*100, "Ep-inflation-%")
}

// BenchmarkAblationNetModel: the same FT run priced by Hockney, LogGP and
// a zero-cost network — how much of FT's energy is communication.
func BenchmarkAblationNetModel(b *testing.B) {
	nets := []netmodel.Model{
		netmodel.InfiniBand40G(),
		netmodel.LogGP{L: 1.3 * units.Microsecond, O: 1.3 * units.Microsecond, G: 0.2 * units.Nanosecond},
		netmodel.Zero{},
	}
	var energies []units.Joules
	for i := 0; i < b.N; i++ {
		energies = energies[:0]
		for _, nm := range nets {
			k, err := ft.New(ft.Config{NX: 32, NY: 32, NZ: 32, Iters: 2})
			if err != nil {
				b.Fatal(err)
			}
			cl, err := cluster.New(cluster.Config{
				Spec: machine.SystemG(), Ranks: 8, Alpha: k.Alpha(), Net: nm, Seed: 42,
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := npb.Run(cl, k)
			if err != nil {
				b.Fatal(err)
			}
			energies = append(energies, rep.True.Total)
		}
	}
	fmt.Fprintf(os.Stderr, "\n== ablation: FT p=8 energy — hockney %v, loggp %v, zero-net %v ==\n",
		energies[0], energies[1], energies[2])
	b.ReportMetric(float64(energies[0]-energies[2])/float64(energies[0])*100, "comm-share-%")
}

// BenchmarkAblationGamma: EE sensitivity to the power-frequency exponent.
func BenchmarkAblationGamma(b *testing.B) {
	var out []float64
	for i := 0; i < b.N; i++ {
		out = out[:0]
		for _, gamma := range []float64{1, 2, 3} {
			spec := machine.SystemG()
			spec.Gamma = gamma
			mp, err := spec.AtFrequency(2.0 * units.GHz)
			if err != nil {
				b.Fatal(err)
			}
			pr, err := (core.Model{Machine: mp, App: app.CG(11, 15).At(75000, 16)}).Predict()
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, pr.EE)
		}
	}
	fmt.Fprintf(os.Stderr, "\n== ablation: CG EE at 2.0GHz for γ=1,2,3: %.4f %.4f %.4f ==\n", out[0], out[1], out[2])
	b.ReportMetric(out[2]-out[0], "EE-gamma-span")
}

// BenchmarkAblationIdleShare: EE sensitivity to the idle-power share —
// the dominant term in Eo (§V.B.5 rewrite of Eq. 16).
func BenchmarkAblationIdleShare(b *testing.B) {
	var out []float64
	for i := 0; i < b.N; i++ {
		out = out[:0]
		for _, scale := range []float64{0.5, 1.0, 2.0} {
			mp := machine.SystemG().MustBase()
			mp.PcIdle = units.Watts(float64(mp.PcIdle) * scale)
			mp.PmIdle = units.Watts(float64(mp.PmIdle) * scale)
			mp.PioIdle = units.Watts(float64(mp.PioIdle) * scale)
			mp.Pother = units.Watts(float64(mp.Pother) * scale)
			mp.PsysIdle = mp.PcIdle + mp.PmIdle + mp.PioIdle + mp.Pother
			pr, err := (core.Model{Machine: mp, App: app.FT(20).At(1<<21, 16)}).Predict()
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, pr.EE)
		}
	}
	fmt.Fprintf(os.Stderr, "\n== ablation: FT EE at idle-power ×0.5/×1/×2: %.4f %.4f %.4f ==\n", out[0], out[1], out[2])
	b.ReportMetric(out[0]-out[2], "EE-idle-span")
}

// BenchmarkAblationAlltoallAlgorithm compares the pairwise-exchange
// all-to-all (the paper's assumption) against a naive rooted gather/
// broadcast emulation priced by the model: M and B of pairwise vs
// sequential per-pair sends through a root.
func BenchmarkAblationAlltoallAlgorithm(b *testing.B) {
	mp := machine.SystemG().MustBase()
	p := 32
	blockBytes := 64.0 * 1024
	var pairwise, naive units.Seconds
	for i := 0; i < b.N; i++ {
		// Pairwise: p−1 full-duplex rounds.
		pairwise = units.Seconds(float64(p-1) * (float64(mp.Ts) + blockBytes*float64(mp.Tb)))
		// Naive: every pair routed through rank 0 sequentially:
		// 2·p·(p−1) messages on one NIC.
		naive = units.Seconds(float64(2*p*(p-1)) * (float64(mp.Ts) + blockBytes*float64(mp.Tb)))
	}
	fmt.Fprintf(os.Stderr, "\n== ablation: alltoall p=%d, 64KiB blocks — pairwise %v vs rooted %v (%.0f×) ==\n",
		p, pairwise, naive, float64(naive)/float64(pairwise))
	b.ReportMetric(float64(naive)/float64(pairwise), "slowdown-x")
}

// --- scheduler benchmarks ---

// BenchmarkSchedule runs the schedrun default trace (64 jobs on 64
// SystemG ranks) under three cap levels so future PRs can track
// scheduler throughput and the energy/makespan frontier. The reported
// metrics are virtual: makespan seconds, completed jobs per virtual
// second, and mean energy per completed job. The backfill variant adds
// the tail-wait metric EASY reservations exist to bound.
func BenchmarkSchedule(b *testing.B) {
	trace := sched.SyntheticTrace(sched.TraceConfig{Jobs: 64, Seed: 1})
	for _, cap := range []units.Watts{2000, 2500, 3000} {
		for _, mk := range []struct {
			name string
			pol  func() sched.Policy
		}{
			{"fifo", sched.FIFO},
			{"ee-max", sched.EEMax},
			{"bf-ee-max", func() sched.Policy { return sched.Backfill(sched.EEMax()) }},
		} {
			b.Run(fmt.Sprintf("cap%dW/%s", int(cap), mk.name), func(b *testing.B) {
				var res sched.Result
				for i := 0; i < b.N; i++ {
					s, err := sched.New(sched.Config{
						Platform: machine.Homogeneous(machine.SystemG()),
						Ranks:    64,
						Cap:      cap,
						Policy:   mk.pol(),
						Seed:     1,
					})
					if err != nil {
						b.Fatal(err)
					}
					res, err = s.Run(trace)
					if err != nil {
						b.Fatal(err)
					}
					if res.CapViolations != 0 {
						b.Fatalf("cap violated %d times", res.CapViolations)
					}
				}
				b.ReportMetric(float64(res.Makespan), "vmakespan-s")
				b.ReportMetric(res.Throughput, "jobs/vs")
				b.ReportMetric(float64(res.EnergyPerJob), "J/job")
				b.ReportMetric(float64(res.MaxWait), "maxwait-vs")
				// Rejections matter at tight caps: FIFO's rigid full-width
				// points can be unrunnable where moldable policies fit.
				b.ReportMetric(float64(res.Completed), "done")
			})
		}
	}
}

// BenchmarkScheduleTelemetry pins the observability cost model: the
// "off" variant is the scheduler's normal disabled-telemetry path
// (every emit site short-circuits on one nil test; see DESIGN.md §9 —
// its allocs/op are the scheduler's own, with zero telemetry delta, a
// claim the goldens pin byte-for-byte and the per-push BENCH artifacts
// track across revisions), and the "memory" variant prices full
// event-stream retention. Both report allocations so a regression in
// either path shows up in the bench history.
func BenchmarkScheduleTelemetry(b *testing.B) {
	trace := sched.SyntheticTrace(TraceConfig64())
	run := func(b *testing.B, rec *telemetry.Recorder) sched.Result {
		s, err := sched.New(sched.Config{
			Platform:  machine.Homogeneous(machine.SystemG()),
			Ranks:     64,
			Cap:       2500,
			Policy:    sched.Backfill(sched.EEMax()),
			Seed:      1,
			Telemetry: rec,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(trace)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, nil)
		}
	})
	b.Run("memory", func(b *testing.B) {
		b.ReportAllocs()
		events := 0
		for i := 0; i < b.N; i++ {
			mem := telemetry.NewMemorySink()
			rec := telemetry.New(mem)
			run(b, rec)
			if err := rec.Err(); err != nil {
				b.Fatal(err)
			}
			events = len(mem.Events())
		}
		b.ReportMetric(float64(events), "events")
	})
}

// TraceConfig64 is the BenchmarkSchedule workload shape, shared so the
// telemetry variant prices the same trace.
func TraceConfig64() sched.TraceConfig { return sched.TraceConfig{Jobs: 64, Seed: 1} }

// --- substrate micro-benchmarks ---

func BenchmarkSimKernelEvents(b *testing.B) {
	k := sim.NewKernel(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(1e-6, tick)
		}
	}
	k.After(1e-6, tick)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMPIAllreduce64Ranks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl, err := cluster.New(cluster.Config{Spec: machine.SystemG(), Ranks: 64, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rt := mpi.New(cl)
		err = rt.Run(func(r *mpi.Rank) {
			mpi.Allreduce(r, float64(r.Rank()), 8, func(a, c float64) float64 { return a + c })
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT3D32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k, err := ft.New(ft.Config{NX: 32, NY: 32, NZ: 32, Iters: 1})
		if err != nil {
			b.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{Spec: machine.SystemG(), Ranks: 4, Alpha: k.Alpha(), Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := npb.Run(cl, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelPredict(b *testing.B) {
	mp := machine.SystemG().MustBase()
	w := app.CG(11, 15).At(75000, 64)
	for i := 0; i < b.N; i++ {
		if _, err := (core.Model{Machine: mp, App: w}).Predict(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIsoEnergySolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := analysis.IsoEnergyN(machine.SystemG(), app.FT(20), 2.8*units.GHz, 16, 0.75, 1<<10, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchHarnessSmoke keeps `go test ./...` exercising the figure
// plumbing without -bench: every generator must produce sane CSV columns
// in quick mode.
func TestBenchHarnessSmoke(t *testing.T) {
	for _, g := range figures.All() {
		fig, err := g.Run(figures.Options{Quick: true, Seed: 7})
		if err != nil {
			t.Fatalf("figure %s: %v", g.ID, err)
		}
		if !strings.Contains(fig.CSV, ",") {
			t.Fatalf("figure %s: no CSV", g.ID)
		}
	}
	// The EE identity must hold on measured data too: Figure 2a's
	// energy_eff equals E1/Ep by construction; sanity-check bounds.
	fig, err := figures.Fig2a(figures.Options{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(fig.CSV), "\n")[1:] {
		parts := strings.Split(line, ",")
		var ee float64
		if _, err := fmt.Sscan(parts[4], &ee); err != nil {
			t.Fatal(err)
		}
		if ee <= 0 || ee > 1.2 || math.IsNaN(ee) {
			t.Fatalf("implausible measured EE %g in %q", ee, line)
		}
	}
}
