// DVFS tuning: the paper's §V.B.7 decision problem — should a code run
// at a higher or lower CPU frequency for energy efficiency, and what is
// the best (p, f) operating point under a whole-system power budget?
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/units"
)

func main() {
	spec := machine.SystemG()

	// Part 1: EE versus frequency per benchmark (fixed n and p).
	type study struct {
		vec app.Vector
		n   float64
	}
	studies := []study{
		{app.FT(20), 1 << 21},
		{app.EP(), 1e8},
		{app.CG(11, 15), 75000},
	}
	p := 16
	fmt.Printf("EE at p=%d across the DVFS ladder:\n%8s", p, "f")
	for _, s := range studies {
		fmt.Printf(" %10s", s.vec.Name)
	}
	fmt.Println()
	for _, f := range spec.Frequencies {
		mp, err := spec.AtFrequency(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8v", f)
		for _, s := range studies {
			pr, err := core.Model{Machine: mp, App: s.vec.At(s.n, p)}.Predict()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10.4f", pr.EE)
		}
		fmt.Println()
	}
	fmt.Println("→ CG rewards scaling f UP (memory-anchored E1, compute-heavy overhead);")
	fmt.Println("  FT and EP are frequency-insensitive, as the paper observes.")

	// Part 2: power-constrained operating points (the title's concern).
	fmt.Println("\nbest (p, f) under a power budget, CG at n=75000:")
	for _, budget := range []units.Watts{300, 800, 2000, 5000} {
		op, err := analysis.OptimizeUnderPowerBudget(
			machine.Homogeneous(spec), app.CG(11, 15), 75000, []int{1, 2, 4, 8, 16, 32, 64}, budget)
		if err != nil {
			fmt.Printf("  %6v: infeasible\n", budget)
			continue
		}
		fmt.Printf("  %6v: p=%-3d f=%v  Tp=%v  EE=%.4f  avg power=%v\n",
			budget, op.P, op.Freq, op.Tp, op.EE, op.AvgPower)
	}
}
