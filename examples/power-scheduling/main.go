// Power scheduling walkthrough: the iso-energy-efficiency model as the
// brain of a cluster scheduler.
//
// The paper answers "what (p, f) should one job use under a power
// budget?" (examples/dvfs-tuning). This example scales the question to
// a fleet: a stream of jobs shares one cluster and one power cap, the
// scheduler picks each job's operating point with the model at
// admission, and a runtime DVFS governor retunes frequencies as load
// changes so the measured draw tracks the cap — never above it.
//
// Run it:
//
//	go run ./examples/power-scheduling
package main

import (
	"fmt"
	"log"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/units"
)

func main() {
	spec := machine.SystemG()
	const (
		ranks = 64
		cap   = units.Watts(2400)
	)

	// Step 1 — a job mix: the five NPB-style vectors at mixed sizes,
	// widths and priorities, arriving over ~a quarter second.
	trace := sched.SyntheticTrace(sched.TraceConfig{Jobs: 48, Seed: 42})
	fmt.Printf("48 jobs on %s/%d ranks under a %v cap\n\n", spec.Name, ranks, cap)

	// Step 2 — run the same trace under each policy, plus the ee-max
	// policy wrapped in EASY backfill reservations. The scheduler is
	// deterministic: a seed fully reproduces a schedule.
	var results []sched.Result
	for _, pol := range []sched.Policy{
		sched.FIFO(), sched.EEMax(), sched.FairShare(),
		sched.Backfill(sched.EEMax()),
	} {
		s, err := sched.New(sched.Config{
			Platform: machine.Homogeneous(spec),
			Ranks:    ranks,
			Cap:      cap,
			Policy:   pol,
			Seed:     42,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(trace)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
	}

	// Step 3 — compare. FIFO runs every job at full width and nominal
	// frequency, so under a tight cap jobs queue while watts go unused
	// between their power envelopes. The EE-aware policies shape each
	// admission with the model (width by iso-energy-efficiency, then
	// frequency by predicted energy) and let the governor loan spare
	// watts as frequency boosts, repaying them when admission needs
	// the headroom back. The backfill row trades a little makespan for
	// a bounded wait tail: when the queue head cannot start, it is
	// promised ranks *and* watts at the model-predicted time they free,
	// and later jobs only jump it when they cannot delay that start.
	fmt.Print(sched.ComparisonTable(results))

	// Step 4 — audit one schedule: per-job operating points, energy
	// attribution, governor retunes, and which jobs were backfilled
	// past a reserved head (the "bf" column).
	fmt.Printf("\nbackfill+ee-max schedule in detail:\n%s", results[3].JobTable())
	fmt.Printf("\ngovernor: %d samples, peak %v of %v cap, %d violations\n",
		results[3].Samples, results[3].PeakPower, cap, results[3].CapViolations)

	// Step 5 — the liveness story in one line: the wait tail with and
	// without reservations protecting the queue head.
	ee, bf := results[1], results[3]
	fmt.Printf("\nwait tail: ee-max max %v (p95 %v, %d head bypasses) vs backfill+ee-max max %v (p95 %v, %d backfilled)\n",
		ee.MaxWait, ee.P95Wait, ee.HeadBypasses, bf.MaxWait, bf.P95Wait, bf.BackfilledJobs)
}
