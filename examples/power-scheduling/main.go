// Power scheduling walkthrough: the iso-energy-efficiency model as the
// brain of a cluster scheduler.
//
// The paper answers "what (p, f) should one job use under a power
// budget?" (examples/dvfs-tuning). This example scales the question to
// a fleet: a stream of jobs shares one cluster and one power cap, the
// scheduler picks each job's operating point with the model at
// admission, and a runtime DVFS governor retunes frequencies as load
// changes so the measured draw tracks the cap — never above it.
//
// Run it:
//
//	go run ./examples/power-scheduling
package main

import (
	"fmt"
	"log"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/units"
)

func main() {
	spec := machine.SystemG()
	const (
		ranks = 64
		cap   = units.Watts(2400)
	)

	// Step 1 — a job mix: the five NPB-style vectors at mixed sizes,
	// widths and priorities, arriving over ~a quarter second.
	trace := sched.SyntheticTrace(sched.TraceConfig{Jobs: 48, Seed: 42})
	fmt.Printf("48 jobs on %s/%d ranks under a %v cap\n\n", spec.Name, ranks, cap)

	// Step 2 — run the same trace under each policy. The scheduler is
	// deterministic: a seed fully reproduces a schedule.
	var results []sched.Result
	for _, pol := range []sched.Policy{sched.FIFO(), sched.EEMax(), sched.FairShare()} {
		s, err := sched.New(sched.Config{
			Spec:   spec,
			Ranks:  ranks,
			Cap:    cap,
			Policy: pol,
			Seed:   42,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(trace)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
	}

	// Step 3 — compare. FIFO runs every job at full width and nominal
	// frequency, so under a tight cap jobs queue while watts go unused
	// between their power envelopes. The EE-aware policies shape each
	// admission with the model (width by iso-energy-efficiency, then
	// frequency by predicted energy) and let the governor loan spare
	// watts as frequency boosts, repaying them when admission needs
	// the headroom back.
	fmt.Print(sched.ComparisonTable(results))

	// Step 4 — audit one schedule: per-job operating points, energy
	// attribution, and governor retunes.
	fmt.Printf("\nee-max schedule in detail:\n%s", results[1].JobTable())
	fmt.Printf("\ngovernor: %d samples, peak %v of %v cap, %d violations\n",
		results[1].Samples, results[1].PeakPower, cap, results[1].CapViolations)
}
