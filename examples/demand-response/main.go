// Demand-response walkthrough: the paper's fixed power constraint made
// time-varying — one heterogeneous cluster racing one job stream
// through a midday cap squeeze.
//
// Real power-constrained clusters rarely get a flat budget: utilities
// sell demand-response contracts (shed load in a window, at notice),
// prices follow diurnal curves, and carbon-aware sites chase the grid's
// intensity signal. internal/capplan turns any of those into a
// piecewise-constant cap timeline, and the scheduler consumes it end to
// end: admission charges each job's power envelope against the
// *minimum* cap over its predicted lifetime (so nobody straddles a
// squeeze they cannot fit), the backfill shadow walk reserves against
// the timeline, the governor throttles ahead of every downward step and
// boosts into every rise, and the audit judges each power sample by the
// cap in force at its own instant.
//
// Run it:
//
//	go run ./examples/demand-response
package main

import (
	"fmt"
	"log"

	"repro/internal/capplan"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/units"
)

func run(platform machine.Platform, plan *capplan.Plan, cap units.Watts, pol sched.Policy, trace []sched.Job) sched.Result {
	s, err := sched.New(sched.Config{
		Platform: platform,
		Cap:      cap,
		Plan:     plan,
		Policy:   pol,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(trace)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	// Step 1 — the fleet and the workload: 32 fast InfiniBand SystemG
	// nodes plus 32 slow Ethernet Dori nodes under one budget.
	platform, err := machine.ParsePlatform("systemg:32,dori:32")
	if err != nil {
		log.Fatal(err)
	}
	const base = units.Watts(3000)
	trace := sched.SyntheticTrace(sched.TraceConfig{Jobs: 48, Seed: 1})

	// Step 2 — size the squeeze off the unconstrained run: a probe under
	// the flat budget tells us the trace's makespan, and the utility's
	// demand-response window lands on the middle third of it at 70 % of
	// the budget.
	probe := run(platform, nil, base, sched.FIFO(), trace)
	mk := probe.Makespan
	plan, err := capplan.Steps(
		capplan.Segment{Start: 0, Cap: base},
		capplan.Segment{Start: mk / 3, Cap: units.Watts(float64(base) * 0.7)},
		capplan.Segment{Start: 2 * mk / 3, Cap: base},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("48 jobs on %s (%d ranks), flat-cap makespan %v\n", platform, platform.TotalRanks(), mk)
	fmt.Printf("demand-response plan: %s (same syntax as schedrun -capplan)\n\n", plan)

	// Step 3 — race every policy family through the squeeze. The same
	// guarantees as under a flat cap hold against the timeline: zero
	// violations in every window, for DVFS policies (the governor
	// throttles ahead of the drop) and non-DVFS fifo alike (admission's
	// min-over-lifetime rule keeps jobs out of windows they cannot fit).
	var results []sched.Result
	for _, pol := range []sched.Policy{
		sched.FIFO(), sched.EEMax(), sched.Backfill(sched.EEMax()), sched.BackfillN(sched.EEMax(), 2),
	} {
		results = append(results, run(platform, plan, 0, pol, trace))
	}
	fmt.Print(sched.ComparisonTable(results))

	// Step 4 — where did the energy go? The per-window ledger shows the
	// squeeze biting: mean draw hugs the lowered cap while it is in
	// force, then the recovery window drains the backlog.
	for _, res := range results[:2] {
		fmt.Printf("\nbudget windows — %s (cap utilisation %.1f%%):\n%s",
			res.Policy, res.CapUtilisation*100, res.WindowTable())
	}
	for _, res := range results {
		if res.CapViolations != 0 {
			log.Fatalf("%s violated the timeline %d times", res.Policy, res.CapViolations)
		}
	}

	// Step 5 — the same timeline from an external signal: map a grid
	// carbon-intensity series onto watts with a budget rule. The highest
	// intensity gets the floor, the lowest the full budget — the
	// carbon-aware rendering of the same squeeze.
	carbon, err := capplan.FromSignal([]capplan.Sample{
		{T: 0, Value: 210},          // overnight wind, gCO2/kWh
		{T: mk / 3, Value: 480},     // midday peakers come online
		{T: 2 * mk / 3, Value: 210}, // evening recovery
	}, capplan.LinearBudget(units.Watts(float64(base)*0.7), base))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncarbon-aware rendering of the same squeeze: %s\n", carbon)
	fmt.Println("(ee-max spends less energy per job than fifo under every rendering of the budget)")
}
