// Trace-analysis walkthrough: from a live schedule to NDJSON to the
// traceq query engine, all in-process — the offline half of the
// observability layer.
//
// The pipeline mirrors what `schedrun -events trace.ndjson` followed by
// `traceq <query> trace.ndjson` does on disk: run a schedule under a
// demand-response cap squeeze with an NDJSON sink attached, decode the
// stream back (telemetry.DecodeNDJSON is the format contract's inverse),
// and interrogate it:
//
//   - why:      one job's lifecycle, ranked block reasons, and the
//     causal chain of completions that finally unblocked it;
//   - critpath: the wait/run dependency chain that set the makespan;
//   - windows:  the per-cap-window rollup (admissions, energy, peak
//     power per budget window).
//
// Everything is deterministic: the same (seed, plan) pair produces the
// same trace, so the same queries print the same answers.
//
// Run it:
//
//	go run ./examples/trace-analysis
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"repro/internal/capplan"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/traceq"
)

func main() {
	// A demand-response squeeze mid-trace: 2500 W, dipping to 2000 W
	// between t=0.3 and t=0.6 — jobs queue up at the squeeze and drain
	// at the recovery edge, which gives the queries something to say.
	plan, err := capplan.ParsePlan("0:2500,0.3:2000,0.6:2500")
	if err != nil {
		log.Fatal(err)
	}

	// The schedule streams its decisions into an in-memory NDJSON log
	// (on disk this would be schedrun -events trace.ndjson).
	var ndjson bytes.Buffer
	rec := telemetry.New(telemetry.NewNDJSONSink(&ndjson))
	s, err := sched.New(sched.Config{
		Platform:  machine.Homogeneous(machine.SystemG()),
		Ranks:     64,
		Plan:      plan,
		Policy:    sched.Backfill(sched.EEMax()),
		Seed:      1,
		Telemetry: rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	trace := sched.SyntheticTrace(sched.TraceConfig{Jobs: 32, Seed: 1})
	res, err := s.Run(trace)
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %d jobs, makespan %v, %d NDJSON events\n\n",
		res.Completed, res.Makespan, bytes.Count(ndjson.Bytes(), []byte{'\n'}))

	// Decode the stream back — the same parse cmd/traceq applies to a
	// trace file.
	evs, err := telemetry.DecodeNDJSON(&ndjson)
	if err != nil {
		log.Fatal(err)
	}

	// Pick the longest-waiting admitted job: the one "why" has the most
	// to explain.
	worst, worstWait := -1, -1.0
	for _, ev := range evs {
		if ev.Kind == telemetry.EvAdmit && float64(ev.Wait) > worstWait {
			worst, worstWait = ev.Job, float64(ev.Wait)
		}
	}

	fmt.Printf("== traceq why %d ==\n", worst)
	if err := traceq.Why(os.Stdout, evs, worst); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== traceq critpath ==")
	if err := traceq.Critpath(os.Stdout, evs); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== traceq windows ==")
	if err := traceq.Windows(os.Stdout, evs); err != nil {
		log.Fatal(err)
	}
}
