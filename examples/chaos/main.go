// Chaos walkthrough: deterministic fault injection under a power cap —
// node failures, checkpoint/restart, and a grid power emergency, on one
// seeded and exactly replayable schedule.
//
// The paper's machines are assumed healthy; real power-constrained
// clusters are not. internal/faults describes what goes wrong — scripted
// "rank 3 dies at t=10" events, per-pool MTBF/MTTR exponential
// failure/repair processes, and transient power emergencies that clamp
// the effective cap — and the scheduler degrades gracefully: a rank
// failure kills the jobs running on it mid-phase, killed jobs resume
// from their last periodic checkpoint (re-executing the work since it,
// plus a restart surcharge) under a capped retry budget, and every
// decision keeps pricing against the cap actually in force. Because all
// stochastic draws come from one explicit-source RNG, the same (seed,
// plan) pair replays the same disasters bit for bit — a failure
// scenario is a regression test, not an anecdote.
//
// Run it:
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/units"
)

func run(plan *faults.Plan, pol sched.Policy, trace []sched.Job) sched.Result {
	s, err := sched.New(sched.Config{
		Platform: machine.Homogeneous(machine.SystemG()),
		Ranks:    16,
		Cap:      900,
		Policy:   pol,
		Seed:     1,
		Faults:   plan,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(trace)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	// Step 1 — a healthy baseline: 16 SystemG ranks, 24 jobs, 900 W.
	// The fault-free run sets the yardstick (and its makespan scales the
	// fault plans below, so the walkthrough is robust to model changes).
	trace := sched.SyntheticTrace(sched.TraceConfig{Jobs: 24, Seed: 1})
	base := run(nil, sched.Backfill(sched.EEMax()), trace)
	mk := base.Makespan
	fmt.Printf("healthy fleet: %d done in %v, %v per job, availability %.4f\n\n",
		base.Completed, base.Makespan, base.EnergyPerJob, base.Availability)

	// Step 2 — one scripted failure, checkpoint/restart priced in. Rank
	// sets are taken low-rank-first, so rank 0 is busy early in the
	// trace; killing it mid-run aborts a job, discards the work since
	// its last checkpoint (LostWork, at the admitted operating point),
	// writes off the attempt's measured energy (WastedEnergy), and
	// requeues the job to resume from the checkpoint.
	scripted := &faults.Plan{
		Scripted: []faults.Scripted{
			{Rank: 0, T: mk / 5},
			{Rank: 0, T: mk / 3, Repair: true},
		},
		MaxRetries:      3,
		CheckpointEvery: mk / 20,
		RestartCost:     mk / 100,
	}
	one := run(scripted, sched.Backfill(sched.EEMax()), trace)
	fmt.Printf("one scripted failure (plan %q):\n", scripted)
	fmt.Printf("  %d kill, %d restart, %d checkpoints; lost work %v, wasted energy %v\n",
		one.Kills, one.Restarts, one.Checkpoints, one.LostWork, one.WastedEnergy)
	fmt.Printf("  %d done, %d lost, availability %.4f, violations %d\n\n",
		one.Completed, one.JobsLost, one.Availability, one.CapViolations)

	// Step 3 — stochastic churn: an exponential failure process on every
	// rank (MTBF about half the trace, MTTR a tenth of that), the same
	// spec the schedrun CLI takes. Replaying the identical (seed, plan)
	// pair must reproduce the identical schedule — kills, restarts and
	// all — which is what makes chaos testing a regression suite.
	spec := fmt.Sprintf("mtbf=*:%g,mttr=*:%g,retries=4,ckpt=%g,restart=%g",
		float64(mk/2), float64(mk/20), float64(mk/20), float64(mk/100))
	churnPlan, err := faults.ParsePlan(spec)
	if err != nil {
		log.Fatal(err)
	}
	churn := run(churnPlan, sched.Backfill(sched.EEMax()), trace)
	replay := run(churnPlan, sched.Backfill(sched.EEMax()), trace)
	if churn.Makespan != replay.Makespan || churn.Failures != replay.Failures ||
		churn.Restarts != replay.Restarts || churn.TotalEnergy != replay.TotalEnergy {
		log.Fatal("replay diverged — fault injection must be deterministic per (seed, plan)")
	}
	fmt.Printf("stochastic churn (spec %q):\n", spec)
	fmt.Printf("  %d failures, %d repairs, %d kills, %d restarts, %d lost; availability %.4f\n",
		churn.Failures, churn.Repairs, churn.Kills, churn.Restarts, churn.JobsLost, churn.Availability)
	fmt.Printf("  replay is bit-identical: makespan %v, energy %v\n\n", replay.Makespan, replay.TotalEnergy)

	// Step 4 — a power emergency: the utility caps the feed at 700 W for
	// the middle third of the run. The clamp is folded into the
	// effective cap timeline, so admission, the governor and the audit
	// all price against it — zero violations against the cap actually in
	// force, exactly as under a capplan squeeze.
	emer := &faults.Plan{
		Emergencies: []faults.Emergency{{Start: mk / 3, End: 2 * mk / 3, Cap: 700}},
		MaxRetries:  1,
	}
	dr := run(emer, sched.Backfill(sched.EEMax()), trace)
	fmt.Printf("power emergency (%s): violations %d against the effective plan %s\n",
		units.Watts(700), dr.CapViolations, dr.Plan)
	fmt.Printf("budget windows (cap utilisation %.1f%%):\n%s\n", dr.CapUtilisation*100, dr.WindowTable())

	for _, res := range []sched.Result{one, churn, dr} {
		if res.CapViolations != 0 {
			log.Fatalf("%s violated the effective cap %d times", res.Policy, res.CapViolations)
		}
		if got := res.Completed + res.Rejected + res.JobsLost; got != len(trace) {
			log.Fatalf("%s stranded jobs: %d terminal of %d", res.Policy, got, len(trace))
		}
	}

	// The CLI runs the same matrix: schedrun -faults "fail=3@10,..." or
	// -faultfile plan.csv (-mtbf/-mttr for a wildcard process), exits 3
	// on any violation and 4 on any permanently lost job.
	fmt.Println("CLI recipe: go run ./cmd/schedrun -jobs 24 -ranks 16 -cap 900 \\")
	fmt.Printf("    -policy backfill+ee-max -faults %q\n", spec)
}
