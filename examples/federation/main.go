// Federation walkthrough: two sites under one global power budget, with
// opposite-phase carbon-intensity signals — the grid serving "east" is
// dirty while "west" runs on surplus renewables, and the phases flip
// mid-trace. A federated allocator (internal/fed) splits the global
// budget across the sites at every plan breakpoint and routes each
// arriving job through an ingest frontend that prices candidate
// operating points against the caps each site actually holds.
//
// The demonstration races two budget-split policies on the same trace:
//
//   - static-share divides every window by site weights, blind to
//     carbon. Work lands wherever the frontend quotes the best
//     completion, roughly half on the dirty grid.
//   - carbon-min tilts every window's discretionary watts toward the
//     momentarily-clean site. The routing frontend only quotes
//     operating points that fit under a site's cap, so the funding
//     *pulls placement with it*: a squeezed dirty site quotes slower
//     feasible points (or none) and jobs follow the watts to the clean
//     site — no carbon term in the routing objective needed.
//
// The trace arrives in two waves aligned with the phase flip, so each
// wave's work can run on whichever site is clean during its phase.
// Expected outcome: carbon-min cuts federation emissions well below
// static-share at comparable makespan — the jobs, sites, global budget
// and scheduler policy are identical; only the split differs.
//
// Everything is deterministic: the same (seed, sites, plans) produce
// bit-identical federated results on every run and any GOMAXPROCS.
package main

import (
	"fmt"
	"log"

	"repro/internal/capplan"
	"repro/internal/fed"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/units"
)

func main() {
	// The grids flip phase at t=2.5s: east starts dirty (420 gCO₂eq/kWh)
	// and turns clean (120), west the mirror image.
	const flip = units.Seconds(2.5)

	east, err := machine.ParsePlatform("systemg:16")
	if err != nil {
		log.Fatal(err)
	}
	west, err := machine.ParsePlatform("systemg:16")
	if err != nil {
		log.Fatal(err)
	}
	sites := []fed.Site{
		{Name: "east", Platform: east, Carbon: []capplan.Sample{{T: 0, Value: 420}, {T: flip, Value: 120}}},
		{Name: "west", Platform: west, Carbon: []capplan.Sample{{T: 0, Value: 120}, {T: flip, Value: 420}}},
	}

	// Two waves of eight jobs: the second wave's arrivals shift past the
	// flip, so each wave fits inside one carbon phase.
	trace := sched.SyntheticTrace(sched.TraceConfig{Jobs: 16, Seed: 9, MaxWidth: 16})
	for i := len(trace) / 2; i < len(trace); i++ {
		trace[i].Arrival += flip
	}

	// 1600 W global is a real squeeze: both sites flat out would draw
	// well past it, so the split policy's choice of who gets the watts
	// decides where work can physically run.
	budget := capplan.Constant(1600)

	run := func(split fed.SplitPolicy) fed.Result {
		res, err := fed.Run(fed.Config{
			Sites:  sites,
			Budget: budget,
			Split:  split,
			Route:  fed.RouteJCT(),
			Seed:   1,
		}, trace)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("two 16-rank sites, opposite-phase carbon flipping at t=%v, global budget %s\n\n", flip, budget)

	static := run(fed.StaticShare())
	fmt.Printf("-- static-share (carbon-blind halves) --\n%s\nrouting:\n%s\n",
		static, static.RoutingTable())

	carbon := run(fed.CarbonMin())
	fmt.Printf("-- carbon-min (discretionary watts follow the clean grid) --\n%s\nrouting:\n%s\n",
		carbon, carbon.RoutingTable())

	fmt.Printf("head to head (same jobs, sites, budget, scheduler policy):\n%s\n",
		fed.ComparisonTable([]fed.Result{static, carbon}))

	ratioC := carbon.Carbon / static.Carbon
	ratioM := float64(carbon.Makespan) / float64(static.Makespan)
	fmt.Printf("carbon-min emits %.0f%% of static-share's CO₂eq (%.3f g vs %.3f g) at %.2fx the makespan\n",
		100*ratioC, carbon.Carbon, static.Carbon, ratioM)
	fmt.Printf("both runs: zero cap violations (%d, %d), every job completed (%d = %d)\n",
		static.CapViolations, carbon.CapViolations, static.Completed, carbon.Completed)
}
