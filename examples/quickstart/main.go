// Quickstart: evaluate the iso-energy-efficiency model for the FT
// benchmark on the SystemG preset and print EE across processor counts —
// the five-minute tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/machine"
)

func main() {
	// 1. A machine-dependent parameter vector: SystemG at its nominal
	//    2.8 GHz (tc, tm, Ts, Tb, ΔPc, ΔPm, Psys-idle).
	spec := machine.SystemG()
	mp, err := spec.Base()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %s @ %v  (tc=%v, tm=%v, Ts=%v, Tb=%v, Psys-idle=%v)\n\n",
		spec.Name, mp.Freq, mp.Tc, mp.Tm, mp.Ts, mp.Tb, mp.PsysIdle)

	// 2. An application-dependent vector: the FT closed form
	//    (α, Won, Woff, ΔWon, ΔWoff, M, B as functions of n and p).
	ftVec := app.FT(20)
	n := float64(1 << 21) // 2M grid points

	// 3. Evaluate the model chain (Eq. 13, 15, 19, 21) per p.
	fmt.Printf("%6s %12s %12s %10s %10s %10s\n", "p", "Tp", "Ep", "speedup", "EEF", "EE")
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		pr, err := core.Model{Machine: mp, App: ftVec.At(n, p)}.Predict()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %12v %12v %10.2f %10.4f %10.4f\n",
			p, pr.Tp, pr.Ep, pr.Speedup, pr.EEF, pr.EE)
	}
	fmt.Println("\nEE = 1/(1+EEF): 1.0 is ideal iso-energy-efficiency;" +
		" growing p buys speedup at an energy-efficiency price.")
}
