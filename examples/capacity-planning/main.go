// Capacity planning: use the iso-energy-efficiency function — the energy
// analogue of Grama's isoefficiency function — to answer "how much must
// the problem grow to keep the machine energy-efficient as we add
// processors?", and compare homogeneous with heterogeneous deployments
// (the paper's §VII future-work extension).
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/units"
)

func main() {
	spec := machine.SystemG()
	f := spec.BaseFreq
	ps := []int{4, 8, 16, 32, 64, 128}

	// Part 1: n(p) keeping EE ≥ target, FT and CG side by side with the
	// performance-isoefficiency baseline.
	target := 0.75
	fmt.Printf("problem growth to hold efficiency ≥ %.2f on %s:\n", target, spec.Name)
	fmt.Printf("%6s %16s %16s %16s\n", "p", "FT n(EE)", "CG n(EE)", "FT n(PE) [Grama]")
	for _, p := range ps {
		nFT, err := analysis.IsoEnergyN(spec, app.FT(20), f, p, target, 1<<8, 1e13)
		ftCell := fmt.Sprintf("%.4g", nFT)
		if err != nil {
			ftCell = "unreachable"
		}
		nCG, err := analysis.IsoEnergyN(spec, app.CG(11, 15), f, p, target, 1<<8, 1e13)
		cgCell := fmt.Sprintf("%.4g", nCG)
		if err != nil {
			cgCell = "unreachable"
		}
		nPE, err := analysis.PerformanceIsoN(spec, app.FT(20), f, p, target, 1<<8, 1e13)
		peCell := fmt.Sprintf("%.4g", nPE)
		if err != nil {
			peCell = "unreachable"
		}
		fmt.Printf("%6d %16s %16s %16s\n", p, ftCell, cgCell, peCell)
	}

	// Part 2: what would mixing slower nodes in cost? Heterogeneous
	// prediction with half the ranks on Dori-class nodes.
	fmt.Println("\nheterogeneous deployment check (FT, n=2^21, p=16):")
	n := float64(1 << 21)
	w := app.FT(20).At(n, 16)

	uniform, err := spec.AtFrequency(f)
	if err != nil {
		log.Fatal(err)
	}
	params := make([]machine.Params, 16)
	for i := range params {
		params[i] = uniform
	}
	homo, err := core.PredictHetero(params, w)
	if err != nil {
		log.Fatal(err)
	}

	dori, err := machine.Dori().Base()
	if err != nil {
		log.Fatal(err)
	}
	for i := 8; i < 16; i++ {
		params[i] = dori
	}
	mixed, err := core.PredictHetero(params, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  all SystemG:        Tp=%v  Ep=%v  EE=%.4f\n", homo.Tp, homo.Ep, homo.EE)
	fmt.Printf("  half Dori nodes:    Tp=%v  Ep=%v  EE=%.4f\n", mixed.Tp, mixed.Ep, mixed.EE)
	fmt.Printf("  → the slow half stretches the makespan by %.1f×; every node idles against it.\n",
		float64(mixed.Tp)/float64(homo.Tp))
	_ = units.Watts(0)
}
