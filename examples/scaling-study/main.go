// Scaling study: run the real FT kernel on the simulated SystemG cluster
// across processor counts, measure time and energy PowerPack-style, and
// compare measured iso-energy-efficiency against the model prediction —
// the workflow behind the paper's Figures 2–4.
package main

import (
	"fmt"
	"log"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/npb"
	"repro/internal/npb/ft"
)

func run(spec machine.Spec, p int, seed int64) npb.Report {
	k, err := ft.New(ft.Config{NX: 32, NY: 32, NZ: 32, Iters: 4})
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Spec:  spec,
		Ranks: p,
		Alpha: k.Alpha(),
		Noise: cluster.DefaultNoise(),
		Seed:  seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := npb.Run(cl, k)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	spec := machine.SystemG()
	mp, err := spec.Base()
	if err != nil {
		log.Fatal(err)
	}

	seq := run(spec, 1, 1)
	fmt.Printf("sequential: %v\n\n", seq)
	fmt.Printf("%4s %12s %14s %12s %12s %12s\n",
		"p", "time", "energy", "EE meas", "EE model", "model err")

	for _, p := range []int{2, 4, 8, 16, 32} {
		par := run(spec, p, int64(100+p))

		eeMeas, err := core.MeasuredEE(seq.Measured.Total, par.Measured.Total)
		if err != nil {
			log.Fatal(err)
		}
		// Build the application vector from the measured counters and
		// trace (the paper's §IV.B methodology), then predict.
		w := app.FromCounters(0.86,
			seq.Totals.OnChipOps, seq.Totals.OffChipAccesses,
			par.Totals.OnChipOps, par.Totals.OffChipAccesses,
			par.M, par.B, p)
		pred, err := core.Model{Machine: mp, App: w}.Predict()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %12v %14v %12.4f %12.4f %11.2f%%\n",
			p, par.Makespan, par.Measured.Total, eeMeas, pred.EE,
			core.PredictionError(pred.Ep, par.Measured.Total)*100)
	}
	fmt.Println("\nmeasured and predicted EE track each other within a few percent —")
	fmt.Println("the model can stand in for measurement when planning larger runs.")
}
