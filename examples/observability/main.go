// Observability walkthrough: the same demand-response squeeze as
// examples/demand-response, this time with the scheduler narrating
// every decision it makes — and the narration rendered three ways.
//
// internal/telemetry taps the scheduler's decision points (admission
// attempts with the exact reason a job stayed queued, backfill
// reservations, governor throttles and boosts with the operating points
// they moved between, plan breakpoints, profiler cap audits) into one
// sim-time-stamped event stream, plus a metrics registry sampled on
// every scheduling edge. A nil recorder costs nothing: every schedule
// in this repo runs the identical code path with telemetry off.
//
// This example wires one recorder with all three exporters:
//
//   - observability_trace.json — Chrome trace-event JSON. Open
//     https://ui.perfetto.dev and drag the file in: per-rank tracks
//     show occupancy and retunes, per-job tracks show wait/run spans,
//     and counter tracks plot queue depth, headroom, and draw vs cap.
//   - observability_events.ndjson — the raw stream, one JSON object
//     per line, for jq/python post-processing.
//   - observability_metrics.csv — the registry sampled in sim time,
//     ready to plot against the budget windows.
//
// plus the plain-text audit, printed below for one job and the fleet.
//
// Run it:
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/capplan"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/units"
)

func main() {
	// Step 1 — the scenario: a heterogeneous fleet under a midday cap
	// squeeze, sized off an untraced probe run exactly as in
	// examples/demand-response.
	platform, err := machine.ParsePlatform("systemg:32,dori:32")
	if err != nil {
		log.Fatal(err)
	}
	const base = units.Watts(3000)
	trace := sched.SyntheticTrace(sched.TraceConfig{Jobs: 48, Seed: 1})

	probe, err := sched.New(sched.Config{Platform: platform, Cap: base, Policy: sched.FIFO(), Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	probeRes, err := probe.Run(trace)
	if err != nil {
		log.Fatal(err)
	}
	mk := probeRes.Makespan
	plan, err := capplan.Steps(
		capplan.Segment{Start: 0, Cap: base},
		capplan.Segment{Start: mk / 3, Cap: units.Watts(float64(base) * 0.7)},
		capplan.Segment{Start: 2 * mk / 3, Cap: base},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("48 jobs on %s (%d ranks), squeeze plan %s\n\n", platform, platform.TotalRanks(), plan)

	// Step 2 — one recorder, every exporter. Sinks receive each event
	// as it is emitted (the NDJSON and Chrome sinks stream; only the
	// memory sink retains), and the metrics registry streams its CSV
	// rows as the scheduler samples it on each edge.
	traceFile := mustCreate("observability_trace.json")
	eventsFile := mustCreate("observability_events.ndjson")
	metricsFile := mustCreate("observability_metrics.csv")
	mem := telemetry.NewMemorySink()

	rec := telemetry.New(
		telemetry.NewChromeTraceSink(traceFile),
		telemetry.NewNDJSONSink(eventsFile),
		mem,
	)
	rec.Metrics().StreamCSV(metricsFile)

	// Step 3 — the traced run: the backfilling ee-max policy through
	// the squeeze, with the recorder handed in via Config. This is the
	// only line a caller adds to instrument a schedule.
	s, err := sched.New(sched.Config{
		Platform:  platform,
		Plan:      plan,
		Policy:    sched.Backfill(sched.EEMax()),
		Seed:      1,
		Telemetry: rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(trace)
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		log.Fatal(err)
	}
	for _, f := range []*os.File{traceFile, eventsFile, metricsFile} {
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if err := rec.Err(); err != nil {
		log.Fatal(err)
	}

	// Step 4 — the audit: the retained stream rendered as plain text.
	// Every job's life is a complete chain — arrive, any blocked
	// attempts with their reason, admit with the chosen operating
	// point, governor retunes, finish — so "why did job N wait?" is
	// answered by reading, not by re-running under a debugger.
	audit := telemetry.NewAudit(mem.Events())
	fmt.Println("one job's decision chain:")
	if jobs := audit.Jobs(); len(jobs) > 0 {
		if err := audit.JobReport(os.Stdout, jobs[len(jobs)/2]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	if err := audit.Summary(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s finished the squeeze: makespan %v, %d retunes, %d violations\n",
		res.Policy, res.Makespan, res.FreqChanges, res.CapViolations)
	fmt.Println("\nwrote observability_trace.json   — drag into https://ui.perfetto.dev")
	fmt.Println("wrote observability_events.ndjson — jq '.ev' | sort | uniq -c")
	fmt.Println("wrote observability_metrics.csv  — plot queue_depth & headroom_w vs t_s")
	fmt.Println("\n(the same artefacts come from the CLI: schedrun -policy backfill+ee-max")
	fmt.Println(" -capplan ... -trace out.json -events out.ndjson -metrics out.csv -audit summary)")
}

func mustCreate(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	return f
}
