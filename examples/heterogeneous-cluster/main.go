// Heterogeneous cluster walkthrough: the paper's §VII future-work
// extension made operational — a mixed fleet of node types racing one
// job stream under one power cap.
//
// A machine.Platform is a list of typed node pools (a Spec × node
// count each) with a stable global rank numbering. Every layer speaks
// it: the cluster provisions per-pool machine vectors, the
// operating-point cache prices per-pool ladders, and the scheduler's
// policies choose a pool per job — a job never spans pools, because the
// model's parameter vector is per node type. Mixing a fast
// InfiniBand-connected pool (SystemG) with a slow Ethernet one (Dori)
// shifts where work lands, how the cap is spent, and which jobs wait —
// exactly the placement question a homogeneous model cannot ask.
//
// Run it:
//
//	go run ./examples/heterogeneous-cluster
package main

import (
	"fmt"
	"log"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/units"
)

func main() {
	// Step 1 — a mixed platform: 32 SystemG nodes + 32 Dori nodes. The
	// same string works as `schedrun -cluster systemg:32,dori:32`.
	platform, err := machine.ParsePlatform("systemg:32,dori:32")
	if err != nil {
		log.Fatal(err)
	}
	const cap = units.Watts(3000)
	trace := sched.SyntheticTrace(sched.TraceConfig{Jobs: 48, Seed: 1})
	fmt.Printf("48 jobs on %s (%d ranks) under a %v cap\n\n", platform, platform.TotalRanks(), cap)

	// Step 2 — race the policies. Pool choice is part of the policy:
	// fifo fills the lowest-ranked pool first and spills onto Dori when
	// SystemG is full; the EE-aware policies price every (pool, p, f)
	// point and keep a job off a slow pool unless its width-slack rule
	// says the service quality survives there.
	var results []sched.Result
	for _, pol := range []sched.Policy{
		sched.FIFO(), sched.EEMax(), sched.Backfill(sched.EEMax()),
	} {
		s, err := sched.New(sched.Config{
			Platform: platform,
			Cap:      cap,
			Policy:   pol,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(trace)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
	}
	fmt.Print(sched.ComparisonTable(results))

	// Step 3 — where did the work land? FIFO buys makespan by spilling
	// onto Dori at its nominal frequency (and pays for it in energy per
	// job); ee-max holds the line on efficiency and lets the overflow
	// wait for SystemG instead of crawling on Ethernet.
	fmt.Println("\nplacement by pool (completed jobs):")
	for _, res := range results {
		perPool := map[string]int{}
		for _, j := range res.Jobs {
			if j.State == sched.Done {
				perPool[j.Pool]++
			}
		}
		fmt.Printf("  %-18s", res.Policy)
		for _, np := range platform.Pools {
			fmt.Printf("  %s %2d", np.PoolName(), perPool[np.PoolName()])
		}
		fmt.Println()
	}

	// Step 4 — audit the mixed schedule: per-job pool, operating point,
	// energy, retunes. Every retune re-evaluates the rank against its
	// own pool's ladder; the cap was never violated.
	bf := results[2]
	fmt.Printf("\nbackfill+ee-max schedule in detail:\n%s", bf.JobTable())
	fmt.Printf("\ngovernor: %d samples, peak %v of %v cap, %d violations\n",
		bf.Samples, bf.PeakPower, cap, bf.CapViolations)
}
